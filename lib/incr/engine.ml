(** Warm-start solving and targeted delete-and-rederive retraction.

    {b Overdelete.} Every fact whose derivation chain involves a removed
    statement lies in an affected cell. By induction over derivation
    height: a dead fact's last derivation step is either a direct edge
    whose support hit zero (its source cell seeds the closure), a copy
    constraint whose support hit zero (its destination seeds), a flow
    through a surviving copy constraint out of an affected cell
    (copy-flow rule), or a derivation by a surviving statement that read
    an affected cell (read-to-write wake rule — the reader's old
    derivations cannot be trusted, so {e all} cells it writes are
    marked). Class sharing is closed over explicitly: unified cells
    share one set, so marking any member marks all.

    Marking is narrowed per fact. A dying constraint only endangers the
    facts it actually carried — for a direct edge the one target, for a
    copy constraint the source class's points-to set — and an
    endangered fact only kills its class when every alternate
    justification is gone: no surviving direct derivation onto any
    class member (edge support minus the tentative decrements stays
    positive), and no surviving copy inflow from an unaffected {e
    green} class — one whose every fact keeps surviving direct support
    — whose set carries the fact. Greenness deliberately ignores copy
    flow, so justification chains bottom out in direct support after at
    most one hop and two dead classes can never vouch for each other
    through mutual copies. Both narrowings re-fire as the drain
    proceeds: a woken statement {e spends} its support exactly like a
    removed one (its rederivation during replay re-earns it), and a
    class marked later re-examines every destination its surviving
    copies feed, so the last examination always sees the final spent
    counts and affected set.

    {b Rederive.} {!Core.Solver.retract_cells} clears exactly the
    affected classes (dissolving them — their justifying cycles may
    have died) while keeping cursors, copy edges and attribution for
    everything else. The replay then re-enqueues only: the added
    statements, the woken readers, the direct writers into an affected
    cell, and the installers of copy constraints whose source or
    destination class was affected (those edges were dropped with the
    class). All are marked dirty, so their visits re-read full sets and
    re-derive — and re-attribute — exactly what still holds; every
    other statement's cursors, subscriptions and support survive
    untouched. The resumed monotone solve over the retained facts
    converges to exactly the edited program's fixpoint: retained facts
    are all derivable without the removed statements, and anything
    derivable that was cleared is re-derived through the replayed
    statements or the surviving constraint edges. *)

open Cfront
open Norm
open Core

type stats = {
  stmts_added : int;
  stmts_removed : int;
  facts_retracted : int;
  affected_cells : int;
  warm_visits : int;
  stmts_replayed : int;
  fallback : bool;
  fallback_planned : bool;
}

let default_retract_budget = 10_000

(* The retraction cost guard (below) only engages past this many
   constraints/source cells: on small fixpoints the closure and clear
   are too cheap to be worth predicting, and the retraction path is the
   one we want exercised by tests and small interactive edits. *)
let plan_floor = 64

exception Too_wide

(** From-scratch solve of the aligned program under the base solver's
    configuration, with the fallback reported as a warning (precision
    is unaffected, so this must not flip the CLI into exit code 1). *)
let scratch ?diags ~(why : string) (t : Solver.t) (prog : Nast.program) :
    Solver.t =
  (match diags with
  | Some d ->
      Diag.warn d "degraded-incremental: %s; solving the edit from scratch"
        why
  | None -> ());
  Solver.run ~layout:t.Solver.ctx.Actx.layout ~arith:t.Solver.arith_mode
    ~budget:t.Solver.budget.Budget.limits ~engine:t.Solver.engine
    ~track:t.Solver.track ~strategy:t.Solver.base_strategy prog

(** The affected-cell closure for a removal edit. Runs against the
    still-solved state (class sharing and cursors intact) and never
    mutates [t] — support spent by the removed statements is counted in
    a local table, so aborting leaves the solver at the base fixpoint,
    reusable for a later attempt. Raises {!Too_wide} past
    [retract_budget] cells. Returns the removed statement ids, the
    affected set (class-closed), and the woken statement ids (surviving
    readers of an affected cell, which {!execute} must replay). *)
let closure (t : Solver.t) (d : Progdiff.t) ~(retract_budget : int) :
    (int, unit) Hashtbl.t * (int, unit) Hashtbl.t * (int, unit) Hashtbl.t =
  let removed_ids = Hashtbl.create 16 in
  List.iter
    (fun (s : Nast.stmt) -> Hashtbl.replace removed_ids s.Nast.id ())
    d.Progdiff.removed;
  let affected = Hashtbl.create 256 in
  let queue = Queue.create () in
  let rec mark (cid : int) =
    if not (Hashtbl.mem affected cid) then begin
      Hashtbl.replace affected cid ();
      if Hashtbl.length affected > retract_budget then raise Too_wide;
      Queue.add cid queue;
      (* unified cells share one set: marking any member marks all *)
      List.iter
        (fun (m : Cell.t) -> mark (Cell.id m))
        (Graph.class_members t.Solver.graph (Cell.of_id cid))
    end
  in
  (* seeds: support that the removed statements were the last to hold.
     Decrements are tentative — accumulated in local tables, never
     applied to the solver's counters (on success the replay resets the
     tracking tables anyway; on Too_wide [t] must stay pristine). *)
  let spent_edge = Hashtbl.create 64 in
  let spent_copy = Hashtbl.create 64 in
  let spend support spent key =
    match Hashtbl.find_opt support key with
    | Some r ->
        let d = 1 + (try Hashtbl.find spent key with Not_found -> 0) in
        Hashtbl.replace spent key d;
        !r - d <= 0
    | None -> false
  in
  (* Pass 1: spend every removed statement's support, collecting the
     constraints whose count ran out. Spending completes before any
     narrowing predicate runs, so "surviving support" below never
     counts a removed statement's contribution. *)
  let dead_edges = ref [] in
  let dead_copy_seeds = ref [] in
  Hashtbl.iter
    (fun sid () ->
      (match Solver.Itbl.find_opt t.Solver.stmt_edges sid with
      | Some l ->
          List.iter
            (fun e ->
              if spend t.Solver.edge_support spent_edge e then
                dead_edges := e :: !dead_edges)
            !l
      | None -> ());
      match Solver.Itbl.find_opt t.Solver.stmt_copies sid with
      | Some l ->
          List.iter
            (fun e ->
              if spend t.Solver.copy_support spent_copy e then
                dead_copy_seeds := e :: !dead_copy_seeds)
            !l
      | None -> ())
    removed_ids;
  (* Greenness, cached per class representative: every fact of the
     class keeps a surviving direct derivation onto some member
     (support minus tentative decrements stays positive). Green classes
     anchor the inflow justification below. The cache entry is dropped
     whenever a wake-time spend kills a member edge; a green→non-green
     flip otherwise coincides with the class being marked (the fact
     that lost its last direct support fails [fact_ok] at the spend
     site), so unmarked classes never go stale. *)
  let direct_ok = Hashtbl.create 64 in
  let all_facts_supported (cid : int) : bool =
    let rep = Graph.canon t.Solver.graph (Cell.of_id cid) in
    let rid = Cell.id rep in
    match Hashtbl.find_opt direct_ok rid with
    | Some b -> b
    | None ->
        let b =
          match Graph.pts_ids t.Solver.graph rep with
          | None -> true
          | Some set ->
              let members = Graph.class_members t.Solver.graph rep in
              let supported w =
                List.exists
                  (fun (m : Cell.t) ->
                    let e = (Cell.id m, w) in
                    match Hashtbl.find_opt t.Solver.edge_support e with
                    | Some r ->
                        let spent =
                          try Hashtbl.find spent_edge e with Not_found -> 0
                        in
                        !r - spent > 0
                    | None -> false)
                  members
              in
              Idset.fold (fun w acc -> acc && supported w) set true
        in
        Hashtbl.replace direct_ok rid b;
        b
  in
  (* Per-fact direct check: the fact [w] keeps a surviving direct
     derivation onto some member of [cid]'s class — the shared set keeps
     it with live justification, exactly as the scratch solve of the
     edited program would re-derive it (member facts flow to the whole
     class). *)
  let fact_supported (cid : int) (w : int) : bool =
    List.exists
      (fun (m : Cell.t) ->
        let e = (Cell.id m, w) in
        match Hashtbl.find_opt t.Solver.edge_support e with
        | Some r ->
            let spent =
              try Hashtbl.find spent_edge e with Not_found -> 0
            in
            !r - spent > 0
        | None -> false)
      (Graph.class_members t.Solver.graph (Cell.of_id cid))
  in
  (* Surviving copy inflows per destination class representative. The
     graph is never mutated during the closure, so canonicalising the
     install-time ids once up front is stable; survival of each pair is
     re-checked at query time because [spent_copy] grows as statements
     are woken. *)
  let copy_in = Hashtbl.create 256 in
  Hashtbl.iter
    (fun ((cs, cd) as key) _ ->
      let rid = Cell.id (Graph.canon t.Solver.graph (Cell.of_id cd)) in
      Hashtbl.replace copy_in rid
        ((cs, key) :: (try Hashtbl.find copy_in rid with Not_found -> [])))
    t.Solver.copy_support;
  (* Second justification layer, stratified to stay sound: the fact [w]
     also survives in class [rid] when a surviving copy inflow carries
     it from a class that is (a) not affected and (b) {e green} — every
     one of its facts has surviving direct support. Greenness never
     depends on copy flow, so justification chains have depth at most
     two and the circular-support trap (two dead classes vouching for
     each other through mutual copies) cannot arise. If the justifying
     source class is marked later, the drain's flow rule re-examines
     this destination — marks only grow, so the last examination is the
     one that counts. *)
  let inflow_ok (cid : int) (w : int) : bool =
    let rid = Cell.id (Graph.canon t.Solver.graph (Cell.of_id cid)) in
    match Hashtbl.find_opt copy_in rid with
    | None -> false
    | Some l ->
        List.exists
          (fun (cs, key) ->
            (match Hashtbl.find_opt t.Solver.copy_support key with
            | Some r ->
                let d =
                  try Hashtbl.find spent_copy key with Not_found -> 0
                in
                !r - d > 0
            | None -> false)
            &&
            let srep = Graph.canon t.Solver.graph (Cell.of_id cs) in
            let sid = Cell.id srep in
            sid <> rid
            && (not (Hashtbl.mem affected sid))
            && all_facts_supported sid
            &&
            match Graph.pts_ids t.Solver.graph srep with
            | Some set -> Idset.mem set w
            | None -> false)
          l
  in
  let fact_ok (cid : int) (w : int) : bool =
    fact_supported cid w || inflow_ok cid w
  in
  (* Per-fact narrowing for a dying copy constraint [(cs, cd)]: only
     the facts that flowed through it — [pts] of the source class — can
     lose their justification in the destination, so only those are
     checked. A source class that never became fact-bearing kills
     nothing.

     One exception bypasses the narrowing entirely: a copy whose
     endpoints sit in the SAME class. Unification is itself a derived
     fact — the solver only merges classes when it finds a copy cycle,
     and after the merge every edge of that cycle is intra-class — so
     an intra-class copy death may have severed the cycle that
     justified the merge. Facts cannot witness that (the merged class
     holds the union either way); the class must dissolve and let the
     replay re-unify whatever cycles still exist. *)
  let copy_death_kills (cs : int) (cd : int) : bool =
    let srep = Graph.canon t.Solver.graph (Cell.of_id cs) in
    let drep = Graph.canon t.Solver.graph (Cell.of_id cd) in
    if Cell.id srep = Cell.id drep then true
    else
      match Graph.pts_ids t.Solver.graph srep with
      | None -> false
      | Some set ->
          let dead = ref false in
          Idset.iter (fun w -> if (not !dead) && not (fact_ok cd w) then dead := true) set;
          !dead
  in
  (* Pass 2: seed the closure from the dead constraints, each narrowed
     by its alternate-derivation check. *)
  List.iter (fun (c, w) -> if not (fact_ok c w) then mark c) !dead_edges;
  List.iter
    (fun (cs, cd) -> if copy_death_kills cs cd then mark cd)
    !dead_copy_seeds;
  (* surviving copy constraints, as adjacency over install-time ids *)
  let copy_adj = Hashtbl.create 256 in
  Hashtbl.iter
    (fun ((cs, cd) as key) r ->
      let d = try Hashtbl.find spent_copy key with Not_found -> 0 in
      if !r - d > 0 then
        Hashtbl.replace copy_adj cs
          (cd :: (try Hashtbl.find copy_adj cs with Not_found -> [])))
    t.Solver.copy_support;
  (* surviving cursor readers: cell id → statement ids consuming it *)
  let readers = Hashtbl.create 256 in
  Solver.Itbl.iter
    (fun sid tbl ->
      if not (Hashtbl.mem removed_ids sid) then
        Solver.Itbl.iter
          (fun cid _ ->
            Hashtbl.replace readers cid
              (sid :: (try Hashtbl.find readers cid with Not_found -> [])))
          tbl)
    t.Solver.cursors;
  let woken = Hashtbl.create 256 in
  let wake (sid : int) =
    if not (Hashtbl.mem removed_ids sid) && not (Hashtbl.mem woken sid) then begin
      Hashtbl.replace woken sid ();
      (* The statement read an affected cell, so it is invalidated and
         will be replayed from scratch — its past derivations only
         survive through OTHER statements. Spend its support like a
         removed statement's: each fact whose last supporter this was
         gets marked, each fact another surviving statement still
         derives is kept (that statement in turn gets woken — and
         spent — if its own reads died, so chains of stale support
         unravel to exactly the facts with no valid derivation left).
         Spending can flip a cached all-facts-supported verdict, so the
         touched class's cache entry is dropped; the class itself is
         re-examined through the dead-fact path right here. *)
      (match Solver.Itbl.find_opt t.Solver.stmt_edges sid with
      | Some l ->
          List.iter
            (fun ((c, w) as e) ->
              if spend t.Solver.edge_support spent_edge e then begin
                Hashtbl.remove direct_ok
                  (Cell.id (Graph.canon t.Solver.graph (Cell.of_id c)));
                if not (fact_ok c w) then mark c
              end)
            !l
      | None -> ());
      match Solver.Itbl.find_opt t.Solver.stmt_copies sid with
      | Some l ->
          List.iter
            (fun ((cs, cd) as e) ->
              if spend t.Solver.copy_support spent_copy e then
                if copy_death_kills cs cd then mark cd)
            !l
      | None -> ()
    end
  in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    (match Hashtbl.find_opt copy_adj cid with
    | Some dsts ->
        List.iter
          (fun cd ->
            if copy_death_kills cid cd then mark cd)
          dsts
    | None -> ());
    (match Hashtbl.find_opt readers cid with
    | Some sids -> List.iter wake sids
    | None -> ());
    (* cursor subscribers of the class, including statements that
       subscribed while the set was still empty and so hold no cursor:
       retraction drops the class's [pointer_subs] entry (its key dies
       with the dissolution), so every subscriber must be replayed to
       re-subscribe under the new representative *)
    (match Solver.Itbl.find_opt t.Solver.pointer_subs cid with
    | Some lst -> List.iter (fun (s : Nast.stmt) -> wake s.Nast.id) !lst
    | None -> ());
    (* object-level subscriptions (the naive engine's only read
       channel; graph-dependent resolves under delta) *)
    match Cvar.Tbl.find_opt t.Solver.subscribers (Cell.of_id cid).Cell.base with
    | Some l -> List.iter (fun (s : Nast.stmt) -> wake s.Nast.id) !l
    | None -> ()
  done;
  (removed_ids, affected, woken)

(** Targeted delete-and-rederive: compute the replay set, surgically
    clear the affected classes ({!Solver.retract_cells} — cursors, copy
    edges, attribution and externs survive for everything unaffected),
    swap in the aligned program, and resume over only the statements
    whose derivations the retraction could have touched. Returns
    (facts retracted, affected cells, warm visits, statements
    replayed). *)
let execute (t : Solver.t) (aligned : Nast.program) (d : Progdiff.t)
    (removed_ids : (int, unit) Hashtbl.t) (affected : (int, unit) Hashtbl.t)
    (woken : (int, unit) Hashtbl.t) : int * int * int * int =
  (* The replay set, computed against the pre-retraction attribution
     tables (retract_cells purges some of them): added statements,
     woken readers, direct writers into an affected cell (their
     surviving derivations into the cleared cells must re-land), and
     installers of copy constraints touching an affected class (those
     physical edges are dropped with the class and must be re-installed
     over the dissolved cells). *)
  let replay = Hashtbl.create 64 in
  let add sid =
    if not (Hashtbl.mem removed_ids sid) then Hashtbl.replace replay sid ()
  in
  Hashtbl.iter (fun sid () -> add sid) woken;
  Solver.Itbl.iter
    (fun sid l ->
      if
        (not (Hashtbl.mem removed_ids sid))
        && List.exists (fun (c, _) -> Hashtbl.mem affected c) !l
      then add sid)
    t.Solver.stmt_edges;
  Solver.Itbl.iter
    (fun sid l ->
      if
        (not (Hashtbl.mem removed_ids sid))
        && List.exists
             (fun (cs, cd) ->
               Hashtbl.mem affected cs || Hashtbl.mem affected cd)
             !l
      then add sid)
    t.Solver.stmt_copies;
  List.iter (fun (s : Nast.stmt) -> add s.Nast.id) d.Progdiff.added;
  let retracted =
    Solver.retract_cells t ~affected ~removed:removed_ids ~invalidated:woken
  in
  Solver.set_program t aligned;
  let r0 = t.Solver.rounds in
  let nreplay = ref 0 in
  (* enqueue in aligned-program order, never hashtable order, so reruns
     of the same edit visit statements identically *)
  List.iter
    (fun (s : Nast.stmt) ->
      if Hashtbl.mem replay s.Nast.id then begin
        incr nreplay;
        (* dirty: retraction may have cleared cells whose logs this
           statement's cursors indexed — re-read the full sets *)
        Solver.mark_dirty t s;
        Solver.enqueue t s
      end)
    (Nast.all_stmts aligned);
  Solver.resume t;
  (retracted, Hashtbl.length affected, t.Solver.rounds - r0, !nreplay)

(** The retraction cost guard's pre-closure estimate: the share of all
    attributed constraints (direct edges + copy installs) the removed
    statements derived. When the removed statements account for a large
    slice, the affected closure will cover most of the graph and the
    replay re-derives nearly everything — a scratch solve does the same
    work without first paying for the closure and the clear. *)
let removed_share (t : Solver.t) (d : Progdiff.t) : float * int =
  let total =
    Hashtbl.length t.Solver.edge_stmt_mem
    + Hashtbl.length t.Solver.copy_stmt_mem
  in
  let removed =
    List.fold_left
      (fun acc (s : Nast.stmt) ->
        let len tbl =
          match Solver.Itbl.find_opt tbl s.Nast.id with
          | Some l -> List.length !l
          | None -> 0
        in
        acc + len t.Solver.stmt_edges + len t.Solver.stmt_copies)
      0 d.Progdiff.removed
  in
  ((if total = 0 then 0.0 else float_of_int removed /. float_of_int total),
   total)

let reanalyze ?(retract_budget = default_retract_budget) ?diags
    (t : Solver.t) (edited : Nast.program) : Solver.t * stats =
  let aligned, d = Progdiff.align ~base:t.Solver.prog edited in
  let n_added = List.length d.Progdiff.added in
  let n_removed = List.length d.Progdiff.removed in
  let finish (t' : Solver.t) ~retracted ~affected ~warm ~replayed ~fallback
      ~fallback_planned =
    t'.Solver.incr_stmts_added <- n_added;
    t'.Solver.incr_stmts_removed <- n_removed;
    t'.Solver.incr_facts_retracted <- retracted;
    t'.Solver.incr_warm_visits <- warm;
    t'.Solver.incr_stmts_replayed <- replayed;
    t'.Solver.incr_fallback_planned <- (if fallback_planned then 1 else 0);
    ( t',
      {
        stmts_added = n_added;
        stmts_removed = n_removed;
        facts_retracted = retracted;
        affected_cells = affected;
        warm_visits = warm;
        stmts_replayed = replayed;
        fallback;
        fallback_planned;
      } )
  in
  let all_stmts = List.length (Nast.all_stmts aligned) in
  let fall why =
    let t' = scratch ?diags ~why t aligned in
    finish t' ~retracted:0 ~affected:0 ~warm:t'.Solver.rounds
      ~replayed:all_stmts ~fallback:true ~fallback_planned:false
  in
  (* The planned variant: same scratch solve, but chosen by the cost
     estimate rather than forced by a limitation — a plan, not a
     degradation, so no [degraded-incremental] warning is emitted and
     the choice surfaces as the [incr_fallback_planned] metric. *)
  let planned () =
    let t' =
      Solver.run ~layout:t.Solver.ctx.Actx.layout ~arith:t.Solver.arith_mode
        ~budget:t.Solver.budget.Budget.limits ~engine:t.Solver.engine
        ~track:t.Solver.track ~strategy:t.Solver.base_strategy aligned
    in
    finish t' ~retracted:0 ~affected:0 ~warm:t'.Solver.rounds
      ~replayed:all_stmts ~fallback:true ~fallback_planned:true
  in
  if Budget.degraded t.Solver.budget then
    fall
      "the base fixpoint is budget-degraded (collapses invalidate support \
       tracking)"
  else if n_removed = 0 then begin
    (* additive warm start *)
    Solver.set_program t aligned;
    let r0 = t.Solver.rounds in
    List.iter (Solver.enqueue t) d.Progdiff.added;
    Solver.resume t;
    finish t ~retracted:0 ~affected:0
      ~warm:(t.Solver.rounds - r0)
      ~replayed:n_added ~fallback:false ~fallback_planned:false
  end
  else if not t.Solver.track then
    fall "the edit removes statements but support tracking is off"
  else
    let share, total_attr = removed_share t d in
    if total_attr >= plan_floor && share >= 0.25 then
      (* the removed statements derived a quarter of everything: the
         closure would cover most of the graph, skip computing it *)
      planned ()
    else
      match closure t d ~retract_budget with
      | exception Too_wide ->
          fall
            (Printf.sprintf
               "the retraction cascade exceeded %d affected cells"
               retract_budget)
      | removed_ids, affected, woken ->
          let sources = Graph.source_cell_count t.Solver.graph in
          if sources >= plan_floor && 2 * Hashtbl.length affected >= sources
          then
            (* replay would clear and re-derive at least half the
               fact-bearing cells — retraction can't beat the scratch
               solve it would effectively perform anyway *)
            planned ()
          else
            let retracted, ncells, warm, replayed =
              execute t aligned d removed_ids affected woken
            in
            finish t ~retracted ~affected:ncells ~warm ~replayed
              ~fallback:false ~fallback_planned:false
