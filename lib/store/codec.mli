(** Snapshot codec: a solved solver's full state as deterministic bytes.

    A snapshot captures everything {!Core.Solver.resume} needs to
    continue a fixpoint as if the original process had never exited:
    the points-to graph's class structure and per-class append logs,
    per-(statement, cell) cursors, object and pointer subscriptions,
    copy edges with their drain cursors, the per-statement support
    tables, and the run's stats-free report JSON. An exact repeat
    restores and resumes with an empty worklist — zero solver visits;
    a near-repeat restores, enqueues only the added statements, and
    resumes warm.

    {b Identity-free coordinates.} Variable ids, cell ids, and
    statement ids are process-local interning accidents, so the codec
    never stores them. Variables travel as {!Incr.Progdiff.var_key}
    strings, cells as (variable, selector) pairs, statements as
    positions in the program's statement-key sequence. On load,
    everything rebinds against the {e request's} freshly-compiled
    program; any referenced entity the request lacks fails the restore
    (the store then falls back to a scratch solve).

    {b Determinism.} Encoding iterates hash tables only through
    semantically sorted or solve-ordered views, so the same solved
    state always produces the same bytes — the digest-stability
    property [test/test_store.ml] checks.

    {b Integrity.} The last line of a snapshot is an MD5 checksum of
    everything before it; {!decode} verifies it and the format version
    before trusting a single field, and every index read is
    range-checked, so a truncated, bit-flipped, or adversarial
    snapshot yields [Error] — never a wrong answer. *)

open Cfront
open Norm
open Core

type arith = [ `Spread | `Copy | `Stride | `Unknown ]

type config = {
  strategy_id : string;
  engine : Solver.engine;
  layout_id : string;
  arith : arith;
  budget : Budget.limits;
}
(** Everything besides the program that shapes the fixpoint. The engine
    is part of the identity because engines leave differently-shaped
    cursor state even at the same fixpoint. *)

val config_line : config -> string
(** Canonical one-line rendering of a configuration. *)

val config_digest : config -> string
(** Digest of {!config_line} alone — the ancestor-search partition key:
    only snapshots of the same configuration can warm-start a request. *)

val stmt_keys : Nast.program -> string list
(** The program's statements as {!Incr.Progdiff.stmt_key} strings, in
    program order (initializers first, then each function in order). *)

val key :
  config -> name:string -> diags_fp:string -> Nast.program -> string
(** The store key: digest of the configuration, the report name, the
    front-end diagnostics rendering, and the {e sorted} variable and
    statement key multisets. Two requests share a key exactly when a
    stored report for one is byte-correct for the other ([diags_fp]
    folds the diagnostics in because the report embeds them — the same
    normalized program reached with different warnings must not
    collide). *)

val enc_str : string -> string
(** Percent-escape a string into one whitespace-free token (percent,
    space, and control bytes become [%XX]), so codec lines split on
    single spaces with no quoting rules. Shared with [lib/summary]'s
    record format. *)

val dec_str_opt : string -> string option
(** Inverse of {!enc_str}; [None] on a malformed escape. *)

type decoded
(** A checksum- and range-verified snapshot, not yet bound to a
    program. *)

val decoded_key : decoded -> string
val decoded_config_line : decoded -> string
val decoded_name : decoded -> string

val decoded_report : decoded -> string
(** The producing run's stats-free report JSON, byte-exact. *)

val decoded_stmt_keys : decoded -> string list
(** The producing program's statement keys, program order. *)

val encode :
  Solver.t ->
  config:config ->
  name:string ->
  key:string ->
  report_json:string ->
  (string, string) result
(** Serialize a solved solver. [Error why] refuses states that would
    not rebind faithfully — e.g. cells of the [`Unknown] marker object
    or of a shadowed variable key, or attribution rows for statements
    outside the current program — rather than store them wrong. *)

val decode : string -> (decoded, string) result
(** Verify checksum and version, parse, range-check. Pure. *)

val ancestor_distance : decoded -> request_keys:string list -> int option
(** [Some n]: the snapshot's statement-key multiset is contained in the
    request's and the request adds [n] statements — an additive
    ancestor, safe to warm-start by monotonicity. [None]: the request
    removed statements the snapshot solved, so its facts may
    over-approximate and the snapshot is unusable as a warm start. *)

val restore :
  decoded ->
  config:config ->
  layout:Layout.config ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  (Solver.t * Nast.stmt list, string) result
(** Rebind a decoded snapshot onto [prog]: a fresh [~track:true] solver
    whose graph, cursors, subscriptions, copy edges, and support tables
    replay the snapshot, plus the request statements the snapshot did
    not cover (in program order — enqueue them and [resume] to close
    the gap; empty for an exact repeat, in which case [resume] returns
    without a single visit). Any binding failure or internal
    inconsistency (audited with {!Core.Graph.check_counts}) is
    [Error]. *)
