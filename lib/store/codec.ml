(** Snapshot codec: full solver state to deterministic bytes and back.
    See the interface for the format and the rebinding rules. *)

open Cfront
open Norm
open Core

type arith = [ `Spread | `Copy | `Stride | `Unknown ]

type config = {
  strategy_id : string;
  engine : Solver.engine;
  layout_id : string;
  arith : arith;
  budget : Budget.limits;
}

let version_line = "structcast-snap v1"

(* [`Delta_par] ignores the domain count: the fixpoint (and so the
   snapshot) is schedule-independent, so all widths share one key. *)
let engine_id : Solver.engine -> string = function
  | `Delta -> "delta"
  | `Delta_nocycle -> "delta-nocycle"
  | `Naive -> "naive"
  | `Delta_par _ -> "delta-par"
  | `Summary -> "summary"

let arith_id : arith -> string = function
  | `Spread -> "spread"
  | `Copy -> "copy"
  | `Stride -> "stride"
  | `Unknown -> "unknown"

(* Budget limits rendered with integer milliseconds so the line is a
   stable function of the limits, never of float formatting. *)
let budget_id (b : Budget.limits) : string =
  let o = function None -> 0 | Some n -> n in
  let ms =
    match b.Budget.timeout_s with
    | None -> 0
    | Some s -> max 1 (int_of_float (s *. 1000.))
  in
  Printf.sprintf "steps=%d,timeout_ms=%d,obj=%d,total=%d"
    (o b.Budget.max_steps) ms
    (o b.Budget.max_cells_per_object)
    (o b.Budget.max_total_cells)

let config_line (c : config) : string =
  Printf.sprintf "%s|%s|%s|%s|%s" c.strategy_id (engine_id c.engine)
    c.layout_id (arith_id c.arith) (budget_id c.budget)

let config_digest (c : config) : string =
  Digest.to_hex (Digest.string (config_line c))

(* ------------------------------------------------------------------ *)
(* Identity-free program fingerprint                                   *)
(* ------------------------------------------------------------------ *)

let stmt_keys (p : Nast.program) : string list =
  let iface = Incr.Progdiff.iface_of_program p in
  List.map
    (fun s -> Incr.Progdiff.stmt_key ~iface ~scope:"<init>" s)
    p.Nast.pinit
  @ List.concat_map
      (fun (f : Nast.func) ->
        List.map
          (fun s -> Incr.Progdiff.stmt_key ~iface ~scope:f.Nast.fname s)
          f.Nast.fstmts)
      p.Nast.pfuncs

let key (c : config) ~(name : string) ~(diags_fp : string)
    (p : Nast.program) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b (config_line c);
  Buffer.add_char b '\n';
  Buffer.add_string b name;
  Buffer.add_char b '\n';
  Buffer.add_string b diags_fp;
  Buffer.add_char b '\n';
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b '\n')
    (List.sort compare
       (List.map Incr.Progdiff.var_key p.Nast.pall_vars));
  Buffer.add_string b "--\n";
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b '\n')
    (List.sort compare (stmt_keys p));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Token escaping                                                      *)
(* ------------------------------------------------------------------ *)

(* Every string field travels as one whitespace-free token: percent,
   space, and control characters are %XX-encoded, so lines split on
   single spaces with no quoting rules. *)
let enc_str (s : string) : string =
  let plain c = c > ' ' && c < '\x7f' && c <> '%' in
  if String.for_all plain s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char b c
        else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents b
  end

exception Bad of string

let dec_str (s : string) : string =
  match String.index_opt s '%' with
  | None -> s
  | Some _ ->
      let b = Buffer.create (String.length s) in
      let n = String.length s in
      let hex c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | _ -> raise (Bad "bad percent escape")
      in
      let rec go i =
        if i < n then
          if s.[i] = '%' then begin
            if i + 2 >= n then raise (Bad "truncated percent escape");
            Buffer.add_char b
              (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
            go (i + 3)
          end
          else begin
            Buffer.add_char b s.[i];
            go (i + 1)
          end
      in
      go 0;
      Buffer.contents b

let dec_str_opt (s : string) : string option =
  match dec_str s with v -> Some v | exception Bad _ -> None

(* ------------------------------------------------------------------ *)
(* Decoded form                                                        *)
(* ------------------------------------------------------------------ *)

type sel_code = SPath of string list | SOff of int

type decoded = {
  d_key : string;
  d_cfg : string;  (** the producing run's [config_line] *)
  d_name : string;
  d_vars : string array;  (** var keys, sorted *)
  d_cells : (int * sel_code) array;  (** (var index, selector) *)
  d_keytbl : string array;  (** statement key table, sorted unique *)
  d_stmts : int array;  (** per base statement, in program order *)
  d_externs : string list;
  d_classes : (int * int list * int list) array;
      (** (rep cell, members incl. rep, target log in insertion order) *)
  d_cursors : (int * (int * int) list) array;  (** stmt → (cell, consumed) *)
  d_ssubs : (int * int list) array;  (** stmt → subscribed vars *)
  d_psubs : (int * int list) array;  (** rep cell → consuming stmts *)
  d_copysrcs : int list;  (** copy sources, list order (newest first) *)
  d_copy : (int * (int * int) list) array;  (** src → (dst, cursor) *)
  d_sedges : (int * (int * int) list) array;  (** stmt → direct edges *)
  d_scopies : (int * (int * int) list) array;  (** stmt → copy installs *)
  d_report : string;  (** the stats-free report JSON of the solved run *)
}

let decoded_key d = d.d_key
let decoded_config_line d = d.d_cfg
let decoded_name d = d.d_name
let decoded_report d = d.d_report
let decoded_stmt_keys d =
  Array.to_list (Array.map (fun i -> d.d_keytbl.(i)) d.d_stmts)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let sel_compare (a : sel_code) (b : sel_code) =
  match (a, b) with
  | SPath p, SPath q -> List.compare String.compare p q
  | SOff x, SOff y -> Int.compare x y
  | SPath _, SOff _ -> -1
  | SOff _, SPath _ -> 1

let sel_code_of (s : Cell.sel) : sel_code =
  match s with Cell.Path p -> SPath p | Cell.Off o -> SOff o

exception Refuse of string

let encode (t : Solver.t) ~(config : config) ~(name : string)
    ~(key : string) ~(report_json : string) : (string, string) result =
  try
    let prog = t.Solver.prog in
    let g = t.Solver.graph in
    (* program-order statements and their table indices *)
    let stmts = Nast.all_stmts prog in
    let stmt_idx : (int, int) Hashtbl.t = Hashtbl.create 256 in
    List.iteri
      (fun i (s : Nast.stmt) -> Hashtbl.replace stmt_idx s.Nast.id i)
      stmts;
    let keys = stmt_keys prog in
    let keytbl = List.sort_uniq compare keys in
    let key_idx : (string, int) Hashtbl.t = Hashtbl.create 256 in
    List.iteri (fun i k -> Hashtbl.replace key_idx k i) keytbl;
    (* variables bind by Progdiff key; a snapshot is only usable if
       every referenced variable is the first (and in practice only)
       holder of its key, so the load side's first-occurrence match
       finds exactly it *)
    let first_by_key : (string, Cvar.t) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (v : Cvar.t) ->
        let k = Incr.Progdiff.var_key v in
        if not (Hashtbl.mem first_by_key k) then
          Hashtbl.replace first_by_key k v)
      prog.Nast.pall_vars;
    let var_of : (string, unit) Hashtbl.t = Hashtbl.create 256 in
    let need_var (v : Cvar.t) : string =
      let k = Incr.Progdiff.var_key v in
      (match Hashtbl.find_opt first_by_key k with
      | Some v0 when Cvar.equal v0 v -> ()
      | Some _ -> raise (Refuse ("shadowed variable key " ^ k))
      | None ->
          raise
            (Refuse ("cell of a variable outside the program: " ^ k)));
      Hashtbl.replace var_of k ();
      k
    in
    (* collect every referenced cell *)
    let cell_set : (int, unit) Hashtbl.t = Hashtbl.create 512 in
    let need_cell cid = Hashtbl.replace cell_set cid () in
    let classes = Graph.dump_classes g in
    List.iter
      (fun (rep, members, log) ->
        need_cell (Cell.id rep);
        List.iter (fun m -> need_cell (Cell.id m)) members;
        List.iter need_cell log)
      classes;
    Solver.Itbl.iter
      (fun _ tbl -> Solver.Itbl.iter (fun cid _ -> need_cell cid) tbl)
      t.Solver.cursors;
    Solver.Itbl.iter (fun rid _ -> need_cell rid) t.Solver.pointer_subs;
    Solver.Itbl.iter
      (fun sid l ->
        need_cell sid;
        List.iter (fun (did, _) -> need_cell did) !l)
      t.Solver.copy_out;
    let need_pairs tbl =
      Solver.Itbl.iter
        (fun _ l ->
          List.iter
            (fun (a, b) ->
              need_cell a;
              need_cell b)
            !l)
        tbl
    in
    need_pairs t.Solver.stmt_edges;
    need_pairs t.Solver.stmt_copies;
    (* map cells to (var key, selector); refuse unmappable ones (the
       `$unknown` marker object, shadowed keys) — storing them would
       rebind to the wrong storage on load *)
    let cell_list =
      Hashtbl.fold
        (fun cid () acc ->
          let c = Cell.of_id cid in
          (cid, need_var c.Cell.base, sel_code_of c.Cell.sel) :: acc)
        cell_set []
    in
    (* subscribed objects may carry no fact-bearing cells; they still
       need a variable binding *)
    let ssubs_keys =
      List.filter_map
        (fun (s : Nast.stmt) ->
          match Solver.Itbl.find_opt t.Solver.stmt_subs s.Nast.id with
          | None -> None
          | Some set ->
              Some
                ( s.Nast.id,
                  List.map need_var (Cvar.Set.elements !set) ))
        stmts
    in
    if List.length ssubs_keys <> Solver.Itbl.length t.Solver.stmt_subs then
      raise (Refuse "stmt_subs entry outside the program");
    (* deterministic tables: vars sorted by key, cells by (var, sel) *)
    let vars = List.sort compare (Hashtbl.fold (fun k () a -> k :: a) var_of []) in
    let varidx : (string, int) Hashtbl.t = Hashtbl.create 256 in
    List.iteri (fun i k -> Hashtbl.replace varidx k i) vars;
    let cells =
      List.sort
        (fun (_, k1, s1) (_, k2, s2) ->
          match compare (k1 : string) k2 with
          | 0 -> sel_compare s1 s2
          | n -> n)
        cell_list
    in
    let cellidx : (int, int) Hashtbl.t = Hashtbl.create 512 in
    List.iteri (fun i (cid, _, _) -> Hashtbl.replace cellidx cid i) cells;
    let ci cid =
      match Hashtbl.find_opt cellidx cid with
      | Some i -> i
      | None -> raise (Refuse "unregistered cell")
    in
    let si sid =
      match Hashtbl.find_opt stmt_idx sid with
      | Some i -> i
      | None -> raise (Refuse "attribution for a statement outside the program")
    in
    (* ---------------- emit ---------------- *)
    let b = Buffer.create 65536 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
    let ints l = String.concat " " (List.map string_of_int l) in
    line "%s" version_line;
    line "key %s" key;
    line "cfg %s" (enc_str (config_line config));
    line "name %s" (enc_str name);
    line "vars %d" (List.length vars);
    List.iter (fun k -> line "%s" (enc_str k)) vars;
    line "cells %d" (List.length cells);
    List.iter
      (fun (_, vk, sel) ->
        let vi = Hashtbl.find varidx vk in
        match sel with
        | SPath p ->
            line "%d P %d%s" vi (List.length p)
              (String.concat ""
                 (List.map (fun f -> " " ^ enc_str f) p))
        | SOff o -> line "%d O %d" vi o)
      cells;
    line "keys %d" (List.length keytbl);
    List.iter (fun k -> line "%s" (enc_str k)) keytbl;
    line "stmts %d" (List.length stmts);
    line "%s" (ints (List.map (fun k -> Hashtbl.find key_idx k) keys));
    let externs = List.sort_uniq compare t.Solver.unknown_externs in
    line "externs %d" (List.length externs);
    List.iter (fun e -> line "%s" (enc_str e)) externs;
    let classes_coded =
      List.sort
        (fun (r1, _, _) (r2, _, _) -> Int.compare r1 r2)
        (List.map
           (fun (rep, members, log) ->
             ( ci (Cell.id rep),
               List.map (fun m -> ci (Cell.id m)) members,
               List.map ci log ))
           classes)
    in
    line "classes %d" (List.length classes_coded);
    List.iter
      (fun (rep, members, log) ->
        line "%d %d%s %d%s" rep (List.length members)
          (String.concat "" (List.map (fun m -> " " ^ string_of_int m) members))
          (List.length log)
          (String.concat "" (List.map (fun w -> " " ^ string_of_int w) log)))
      classes_coded;
    (* per-statement tables, iterated in program order *)
    let by_stmt tbl f =
      List.filter_map
        (fun (s : Nast.stmt) ->
          Option.map (fun v -> (si s.Nast.id, f v))
            (Solver.Itbl.find_opt tbl s.Nast.id))
        stmts
    in
    let cursor_entries =
      by_stmt t.Solver.cursors (fun tbl ->
          List.sort compare
            (Solver.Itbl.fold (fun cid k acc -> (ci cid, k) :: acc) tbl []))
    in
    if List.length cursor_entries <> Solver.Itbl.length t.Solver.cursors then
      raise (Refuse "cursor entry outside the program");
    let pair_lines label entries =
      line "%s %d" label (List.length entries);
      List.iter
        (fun (i, pairs) ->
          line "%d %d%s" i (List.length pairs)
            (String.concat ""
               (List.map (fun (a, b) -> Printf.sprintf " %d %d" a b) pairs)))
        entries
    in
    pair_lines "cursors" cursor_entries;
    line "ssubs %d" (List.length ssubs_keys);
    List.iter
      (fun (sid, ks) ->
        let vis = List.sort compare (List.map (Hashtbl.find varidx) ks) in
        line "%d %d%s" (si sid) (List.length vis)
          (String.concat "" (List.map (fun v -> " " ^ string_of_int v) vis)))
      ssubs_keys;
    let psubs =
      List.sort
        (fun (r1, _) (r2, _) -> Int.compare r1 r2)
        (Solver.Itbl.fold
           (fun rid l acc ->
             ( ci rid,
               List.map (fun (s : Nast.stmt) -> si s.Nast.id) !l )
             :: acc)
           t.Solver.pointer_subs [])
    in
    line "psubs %d" (List.length psubs);
    List.iter
      (fun (rid, ss) ->
        line "%d %d%s" rid (List.length ss)
          (String.concat "" (List.map (fun s -> " " ^ string_of_int s) ss)))
      psubs;
    (* copy sources in creation-list order; strays (copy_out keys that
       fell out of copy_srcs) are appended, sorted, to stay complete
       and deterministic *)
    let live = List.filter (Solver.Itbl.mem t.Solver.copy_out) !(t.Solver.copy_srcs) in
    let in_live : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter (fun sid -> Hashtbl.replace in_live sid ()) live;
    let strays =
      List.sort compare
        (Solver.Itbl.fold
           (fun sid _ acc ->
             if Hashtbl.mem in_live sid then acc else ci sid :: acc)
           t.Solver.copy_out [])
    in
    let srcs = List.map ci live @ strays in
    line "copysrcs %d" (List.length srcs);
    line "%s" (ints srcs);
    line "copy %d" (List.length srcs);
    let copy_of_ci =
      let tbl = Hashtbl.create 64 in
      Solver.Itbl.iter
        (fun sid l -> Hashtbl.replace tbl (ci sid) !l)
        t.Solver.copy_out;
      tbl
    in
    List.iter
      (fun src ->
        let pairs =
          match Hashtbl.find_opt copy_of_ci src with
          | Some l -> List.map (fun (did, cur) -> (ci did, !cur)) l
          | None -> []
        in
        line "%d %d%s" src (List.length pairs)
          (String.concat ""
             (List.map (fun (d, c) -> Printf.sprintf " %d %d" d c) pairs)))
      srcs;
    let sedges =
      by_stmt t.Solver.stmt_edges (fun l ->
          List.map (fun (a, b) -> (ci a, ci b)) !l)
    in
    if List.length sedges <> Solver.Itbl.length t.Solver.stmt_edges then
      raise (Refuse "edge attribution outside the program");
    pair_lines "sedges" sedges;
    let scopies =
      by_stmt t.Solver.stmt_copies (fun l ->
          List.map (fun (a, b) -> (ci a, ci b)) !l)
    in
    if List.length scopies <> Solver.Itbl.length t.Solver.stmt_copies then
      raise (Refuse "copy attribution outside the program");
    pair_lines "scopies" scopies;
    line "report";
    line "%s" report_json;
    let payload = Buffer.contents b in
    Ok
      (payload
      ^ Printf.sprintf "sum %s\n" (Digest.to_hex (Digest.string payload)))
  with Refuse why -> Error why

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let decode (bytes : string) : (decoded, string) result =
  try
    let n = String.length bytes in
    if n = 0 then raise (Bad "empty snapshot");
    if bytes.[n - 1] <> '\n' then raise (Bad "truncated (no final newline)");
    let i =
      match String.rindex_from_opt bytes (n - 2) '\n' with
      | Some i -> i
      | None -> raise (Bad "truncated")
    in
    let payload = String.sub bytes 0 (i + 1) in
    (match String.split_on_char ' ' (String.sub bytes (i + 1) (n - i - 2)) with
    | [ "sum"; hex ] when String.length hex = 32 ->
        if Digest.to_hex (Digest.string payload) <> hex then
          raise (Bad "checksum mismatch")
    | _ -> raise (Bad "missing checksum line"));
    let lines = Array.of_list (String.split_on_char '\n' payload) in
    (* split leaves one trailing "" for the final newline *)
    let nlines = Array.length lines - 1 in
    let pos = ref 0 in
    let next () =
      if !pos >= nlines then raise (Bad "unexpected end of snapshot");
      let l = lines.(!pos) in
      incr pos;
      l
    in
    let expect_version () =
      if next () <> version_line then raise (Bad "unsupported format version")
    in
    let int s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> raise (Bad ("bad integer " ^ s))
    in
    let header name =
      match String.split_on_char ' ' (next ()) with
      | [ h; v ] when h = name -> v
      | _ -> raise (Bad ("expected " ^ name ^ " line"))
    in
    let count name = int (header name) in
    let nat name =
      let n = count name in
      if n < 0 then raise (Bad (name ^ " count negative"));
      n
    in
    let ints_of line = List.map int (String.split_on_char ' ' line) in
    let take_pairs bound = function
      | cnt :: rest ->
          let rec go k acc = function
            | [] when k = 0 -> List.rev acc
            | a :: b :: tl when k > 0 ->
                if a < 0 || a >= bound then raise (Bad "index out of range");
                go (k - 1) ((a, b) :: acc) tl
            | _ -> raise (Bad "malformed pair list")
          in
          go cnt [] rest
      | [] -> raise (Bad "malformed pair list")
    in
    expect_version ();
    let d_key = header "key" in
    let d_cfg = dec_str (header "cfg") in
    let d_name = dec_str (header "name") in
    let nvars = nat "vars" in
    let d_vars = Array.init nvars (fun _ -> dec_str (next ())) in
    let ncells = nat "cells" in
    let d_cells =
      Array.init ncells (fun _ ->
          match String.split_on_char ' ' (next ()) with
          | vi :: "P" :: k :: fields ->
              let vi = int vi and k = int k in
              if vi < 0 || vi >= nvars then raise (Bad "cell var out of range");
              if List.length fields <> k then raise (Bad "bad path arity");
              (vi, SPath (List.map dec_str fields))
          | [ vi; "O"; o ] ->
              let vi = int vi in
              if vi < 0 || vi >= nvars then raise (Bad "cell var out of range");
              (vi, SOff (int o))
          | _ -> raise (Bad "malformed cell"))
    in
    let nkeys = nat "keys" in
    let d_keytbl = Array.init nkeys (fun _ -> dec_str (next ())) in
    let nstmts = nat "stmts" in
    let d_stmts =
      let l =
        if nstmts = 0 then (
          ignore (next ());
          [])
        else ints_of (next ())
      in
      if List.length l <> nstmts then raise (Bad "bad stmts arity");
      let a = Array.of_list l in
      Array.iter
        (fun k -> if k < 0 || k >= nkeys then raise (Bad "stmt key range"))
        a;
      a
    in
    let nex = nat "externs" in
    let d_externs = List.init nex (fun _ -> dec_str (next ())) in
    let nclasses = nat "classes" in
    let d_classes =
      Array.init nclasses (fun _ ->
          match ints_of (next ()) with
          | rep :: m :: rest ->
              if rep < 0 || rep >= ncells then raise (Bad "class rep range");
              if m < 1 then raise (Bad "empty class");
              if List.length rest < m + 1 then raise (Bad "short class line");
              let members = List.filteri (fun i _ -> i < m) rest in
              let rest = List.filteri (fun i _ -> i >= m) rest in
              (match rest with
              | t :: targets ->
                  if List.length targets <> t then
                    raise (Bad "bad class target arity");
                  List.iter
                    (fun c ->
                      if c < 0 || c >= ncells then
                        raise (Bad "class cell range"))
                    (members @ targets);
                  (rep, members, targets)
              | [] -> raise (Bad "short class line"))
          | _ -> raise (Bad "malformed class"))
    in
    let entry_array name bound =
      let n = nat name in
      Array.init n (fun _ ->
          match ints_of (next ()) with
          | i :: rest ->
              if i < 0 || i >= bound then raise (Bad (name ^ " index range"));
              (i, take_pairs ncells rest)
          | [] -> raise (Bad ("malformed " ^ name)))
    in
    let d_cursors = entry_array "cursors" nstmts in
    let nssubs = nat "ssubs" in
    let d_ssubs =
      Array.init nssubs (fun _ ->
          match ints_of (next ()) with
          | i :: k :: vs ->
              if i < 0 || i >= nstmts then raise (Bad "ssubs stmt range");
              if List.length vs <> k then raise (Bad "ssubs arity");
              List.iter
                (fun v ->
                  if v < 0 || v >= nvars then raise (Bad "ssubs var range"))
                vs;
              (i, vs)
          | _ -> raise (Bad "malformed ssubs"))
    in
    let npsubs = nat "psubs" in
    let d_psubs =
      Array.init npsubs (fun _ ->
          match ints_of (next ()) with
          | c :: k :: ss ->
              if c < 0 || c >= ncells then raise (Bad "psubs cell range");
              if List.length ss <> k then raise (Bad "psubs arity");
              List.iter
                (fun s ->
                  if s < 0 || s >= nstmts then raise (Bad "psubs stmt range"))
                ss;
              (c, ss)
          | _ -> raise (Bad "malformed psubs"))
    in
    let ncopysrcs = nat "copysrcs" in
    let d_copysrcs =
      let l =
        if ncopysrcs = 0 then (
          ignore (next ());
          [])
        else ints_of (next ())
      in
      if List.length l <> ncopysrcs then raise (Bad "copysrcs arity");
      List.iter
        (fun c -> if c < 0 || c >= ncells then raise (Bad "copysrcs range"))
        l;
      l
    in
    let d_copy = entry_array "copy" ncells in
    let d_sedges = entry_array "sedges" nstmts in
    let d_scopies = entry_array "scopies" nstmts in
    (match next () with
    | "report" -> ()
    | _ -> raise (Bad "expected report line"));
    let d_report = next () in
    Ok
      {
        d_key;
        d_cfg;
        d_name;
        d_vars;
        d_cells;
        d_keytbl;
        d_stmts;
        d_externs;
        d_classes;
        d_cursors;
        d_ssubs;
        d_psubs;
        d_copysrcs;
        d_copy;
        d_sedges;
        d_scopies;
        d_report;
      }
  with Bad why -> Error why

(* ------------------------------------------------------------------ *)
(* Ancestor distance                                                   *)
(* ------------------------------------------------------------------ *)

let ancestor_distance (d : decoded) ~(request_keys : string list) :
    int option =
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun ki ->
      let k = d.d_keytbl.(ki) in
      match Hashtbl.find_opt counts k with
      | Some r -> incr r
      | None -> Hashtbl.add counts k (ref 1))
    d.d_stmts;
  let added = ref 0 in
  List.iter
    (fun k ->
      match Hashtbl.find_opt counts k with
      | Some r when !r > 0 -> decr r
      | _ -> incr added)
    request_keys;
  let leftover = Hashtbl.fold (fun _ r acc -> acc + max 0 !r) counts 0 in
  (* leftover base statements = the request removed some: the snapshot
     is not an additive ancestor, monotone warm start would be unsound *)
  if leftover > 0 then None else Some !added

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)
(* ------------------------------------------------------------------ *)

let restore (d : decoded) ~(config : config) ~(layout : Layout.config)
    ~(strategy : (module Strategy.S)) (prog : Nast.program) :
    (Solver.t * Nast.stmt list, string) result =
  try
    let fail why = raise (Bad why) in
    (* bind snapshot variables to the request program's *)
    let first_by_key : (string, Cvar.t) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (v : Cvar.t) ->
        let k = Incr.Progdiff.var_key v in
        if not (Hashtbl.mem first_by_key k) then
          Hashtbl.replace first_by_key k v)
      prog.Nast.pall_vars;
    let vars =
      Array.map
        (fun k ->
          match Hashtbl.find_opt first_by_key k with
          | Some v -> v
          | None -> fail ("snapshot variable not in the program: " ^ k))
        d.d_vars
    in
    let cells =
      Array.map
        (fun (vi, sel) ->
          Cell.v vars.(vi)
            (match sel with
            | SPath p -> Cell.Path p
            | SOff o -> Cell.Off o))
        d.d_cells
    in
    (* bind snapshot statements positionally per key, like
       Progdiff.align does; leftover request statements are the added
       delta to enqueue *)
    let stmts = Nast.all_stmts prog in
    let req_keys = stmt_keys prog in
    let buckets : (string, Nast.stmt Queue.t) Hashtbl.t =
      Hashtbl.create 256
    in
    List.iter2
      (fun (s : Nast.stmt) k ->
        let q =
          match Hashtbl.find_opt buckets k with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.add buckets k q;
              q
        in
        Queue.add s q)
      stmts req_keys;
    let matched : (int, unit) Hashtbl.t = Hashtbl.create 256 in
    let stmt_of =
      Array.map
        (fun ki ->
          let k = d.d_keytbl.(ki) in
          match Hashtbl.find_opt buckets k with
          | Some q when not (Queue.is_empty q) ->
              let s = Queue.pop q in
              Hashtbl.replace matched s.Nast.id ();
              s
          | _ -> fail ("snapshot statement not in the program: " ^ k))
        d.d_stmts
    in
    let added =
      List.filter
        (fun (s : Nast.stmt) -> not (Hashtbl.mem matched s.Nast.id))
        stmts
    in
    (* a fresh solver over the request program, then its state painted
       from the snapshot *)
    let t =
      Solver.create ~layout ~arith:config.arith ~budget:config.budget
        ~engine:config.engine ~track:true ~strategy prog
    in
    let g = t.Solver.graph in
    (* graph: replay each class's append log against the stored
       representative, then fold the members in. Fact-bearing classes
       keep their representative (unify keeps the side with more
       facts); fact-free classes may pick another member, which
       [canon] absorbs below. *)
    Array.iter
      (fun (rep, members, log) ->
        let repc = cells.(rep) in
        List.iter
          (fun w -> ignore (Graph.add_edge g repc cells.(w)))
          log;
        List.iter
          (fun m -> if m <> rep then ignore (Graph.unify g repc cells.(m)))
          members)
      d.d_classes;
    (match Graph.check_counts g with
    | None -> ()
    | Some why -> fail ("restored graph inconsistent: " ^ why));
    let canon_id ci = Cell.id (Graph.canon g cells.(ci)) in
    let log_size ci =
      match Graph.pts_ids g cells.(ci) with
      | Some s -> Idset.cardinal s
      | None -> 0
    in
    (* cursors: per-(stmt, cell) consumed counts into the class logs *)
    Array.iter
      (fun (si, pairs) ->
        let sid = stmt_of.(si).Nast.id in
        let tbl = Solver.Itbl.create (List.length pairs) in
        List.iter
          (fun (ci, k) ->
            if k < 0 || k > log_size ci then fail "cursor past the log";
            Solver.Itbl.replace tbl (Cell.id cells.(ci)) k)
          pairs;
        Solver.Itbl.replace t.Solver.cursors sid tbl)
      d.d_cursors;
    (* object subscriptions *)
    Array.iter
      (fun (si, vis) ->
        let s = stmt_of.(si) in
        let set =
          List.fold_left
            (fun acc vi -> Cvar.Set.add vars.(vi) acc)
            Cvar.Set.empty vis
        in
        Solver.Itbl.replace t.Solver.stmt_subs s.Nast.id (ref set);
        List.iter
          (fun vi ->
            let v = vars.(vi) in
            match Cvar.Tbl.find_opt t.Solver.subscribers v with
            | Some l -> l := s :: !l
            | None -> Cvar.Tbl.replace t.Solver.subscribers v (ref [ s ]))
          vis)
      d.d_ssubs;
    (* pointer (cursor) subscriptions, keyed by the restored class rep *)
    Array.iter
      (fun (ci, sis) ->
        let rid = canon_id ci in
        let ss = List.map (fun si -> stmt_of.(si)) sis in
        (match Solver.Itbl.find_opt t.Solver.pointer_subs rid with
        | Some l -> l := !l @ ss
        | None -> Solver.Itbl.replace t.Solver.pointer_subs rid (ref ss));
        List.iter
          (fun (s : Nast.stmt) ->
            Hashtbl.replace t.Solver.cell_subbed (s.Nast.id, rid) ())
          ss)
      d.d_psubs;
    (* copy edges *)
    t.Solver.copy_srcs := List.map canon_id d.d_copysrcs;
    Array.iter
      (fun (ci, pairs) ->
        let sid = canon_id ci in
        let entries =
          List.map
            (fun (di, cur) ->
              if cur < 0 || cur > log_size ci then
                fail "copy cursor past the log";
              let did = canon_id di in
              Hashtbl.replace t.Solver.copy_mem (sid, did) ();
              (did, ref cur))
            pairs
        in
        Solver.Itbl.replace t.Solver.copy_out sid (ref entries))
      d.d_copy;
    (* attribution: per-statement lists, membership and support derived *)
    let bump tbl key =
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl key (ref 1)
    in
    Array.iter
      (fun (si, pairs) ->
        let sid = stmt_of.(si).Nast.id in
        let l =
          List.map
            (fun (a, b) ->
              let e = (Cell.id cells.(a), Cell.id cells.(b)) in
              Hashtbl.replace t.Solver.edge_stmt_mem
                (sid, fst e, snd e) ();
              bump t.Solver.edge_support e;
              e)
            pairs
        in
        Solver.Itbl.replace t.Solver.stmt_edges sid (ref l))
      d.d_sedges;
    Array.iter
      (fun (si, pairs) ->
        let sid = stmt_of.(si).Nast.id in
        let l =
          List.map
            (fun (a, b) ->
              let e = (Cell.id cells.(a), Cell.id cells.(b)) in
              Hashtbl.replace t.Solver.copy_stmt_mem
                (sid, fst e, snd e) ();
              bump t.Solver.copy_support e;
              e)
            pairs
        in
        Solver.Itbl.replace t.Solver.stmt_copies sid (ref l))
      d.d_scopies;
    t.Solver.unknown_externs <- d.d_externs;
    Ok (t, added)
  with
  | Bad why -> Error why
  | Invalid_argument why -> Error ("restore: " ^ why)
