(** Crash-safe content-addressed fixpoint store. See the interface for
    the directory layout, durability story, and the degrade-to-recompute
    guarantee. *)

module Codec = Codec
open Cfront
open Norm
open Core

type fault = Short_write | Bit_flip | Enospc | Crash_rename

exception Crashed
(** Raised by the injection layer to simulate dying before an operation
    completed. Never escapes the store: every public operation catches
    it, counts a write failure, and degrades to not-stored. *)

type row = { r_key : string; r_cfg : string; r_size : int }

type t = {
  dir : string;
  snaps_dir : string;
  quarantine_dir : string;
  index_path : string;
  max_bytes : int;
  inject : int -> fault option;
  mutable write_ops : int;
  mutable rows : row list;  (** live snapshots, most recent first *)
  mutable index_lines : int;  (** physical lines, for compaction *)
  counters : Metrics.store;
  log : string -> unit;
}

let counters st = st.counters
let snap_path st key = Filename.concat st.snaps_dir (key ^ ".snap")
let quarantine_path st key = Filename.concat st.quarantine_dir (key ^ ".snap")
let live st = List.map (fun r -> (r.r_key, r.r_size)) st.rows

(* ------------------------------------------------------------------ *)
(* Fault-injected writes                                               *)
(* ------------------------------------------------------------------ *)

(* Every physical write draws one ordinal from the injection hook.
   Short_write truncates the bytes (the fsync and rename still happen:
   a torn-but-visible file the checksum must catch); Bit_flip corrupts
   one bit mid-payload; Enospc fails before anything reaches the disk;
   Crash_rename stops after the temp file is durable but before it
   becomes visible — the injected equivalent of kill -9 between fsync
   and rename. *)
let mangle st (data : string) : string * bool =
  st.write_ops <- st.write_ops + 1;
  match st.inject st.write_ops with
  | None -> (data, false)
  | Some Enospc -> raise (Sys_error "No space left on device (injected)")
  | Some Short_write -> (String.sub data 0 (String.length data / 2), false)
  | Some Bit_flip ->
      let b = Bytes.of_string data in
      let i = Bytes.length b / 2 in
      if Bytes.length b > 0 then
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      (Bytes.to_string b, false)
  | Some Crash_rename -> (data, true)

let write_fd fd (data : string) =
  let n = String.length data in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd data off (n - off))
  in
  go 0

(* temp + fsync + rename: after this returns, [dest] holds exactly
   [data] (or its injected mangling); a crash at any point leaves
   either the old [dest] or a stray temp file cleaned at next open. *)
let atomic_write st ~temp ~dest (data : string) : unit =
  let data, crash = mangle st data in
  let fd =
    Unix.openfile temp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_fd fd data;
      Unix.fsync fd);
  if crash then raise Crashed;
  Sys.rename temp dest

let append_index st (line : string) : unit =
  let data, crash = mangle st (line ^ "\n") in
  if crash then raise Crashed;
  let fd =
    Unix.openfile st.index_path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_fd fd data;
      Unix.fsync fd);
  st.index_lines <- st.index_lines + 1

(* Index bookkeeping must never fail an operation that already
   succeeded on the snapshot files themselves: a lost index line only
   costs recency/size accounting, which the next open rebuilds. *)
let append_index_soft st line =
  try append_index st line
  with Crashed | Sys_error _ | Unix.Unix_error _ ->
    st.log "index append failed (snapshot state unaffected)"

let drop_row st key =
  st.rows <- List.filter (fun r -> r.r_key <> key) st.rows

(* ------------------------------------------------------------------ *)
(* Index load, torn-tail recovery, compaction                          *)
(* ------------------------------------------------------------------ *)

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_index (contents : string) : row list * int =
  let parts = String.split_on_char '\n' contents in
  (* the last element is "" after a complete final newline, or a torn
     fragment from a write that died mid-line: both are dropped *)
  let lines =
    match List.rev parts with [] -> [] | _last :: rest -> List.rev rest
  in
  let rows =
    List.fold_left
      (fun rows line ->
        match String.split_on_char '\t' line with
        | [ "v1"; "add"; key; cfg; size ] when key <> "" -> (
            match int_of_string_opt size with
            | Some sz ->
                { r_key = key; r_cfg = cfg; r_size = sz }
                :: List.filter (fun r -> r.r_key <> key) rows
            | None -> rows)
        | [ "v1"; "touch"; key ] -> (
            match List.partition (fun r -> r.r_key = key) rows with
            | [ r ], rest -> r :: rest
            | _ -> rows)
        | [ "v1"; "del"; key; _reason ] ->
            List.filter (fun r -> r.r_key <> key) rows
        | _ -> rows (* corrupt line: recovered by skipping *))
      [] lines
  in
  (rows, List.length lines)

let compact_threshold = 512

let compact st =
  let temp = st.index_path ^ ".tmp" in
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "v1\tadd\t%s\t%s\t%d\n" r.r_key r.r_cfg r.r_size))
    (List.rev st.rows);
  match atomic_write st ~temp ~dest:st.index_path (Buffer.contents b) with
  | () -> st.index_lines <- List.length st.rows
  | exception (Crashed | Sys_error _ | Unix.Unix_error _) ->
      st.log "index compaction failed; keeping the old log"

let mkdir_p path =
  try Unix.mkdir path 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let open_store ?(max_bytes = 256 * 1024 * 1024) ?(inject = fun _ -> None)
    ?(log = ignore) dir : t =
  mkdir_p dir;
  let snaps_dir = Filename.concat dir "snaps" in
  let quarantine_dir = Filename.concat dir "quarantine" in
  mkdir_p snaps_dir;
  mkdir_p quarantine_dir;
  let index_path = Filename.concat dir "index.log" in
  let rows, lines =
    if Sys.file_exists index_path then parse_index (read_file index_path)
    else ([], 0)
  in
  (* a crash between fsync and rename leaves a durable temp: discard *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat snaps_dir f) with Sys_error _ -> ())
    (try Sys.readdir snaps_dir with Sys_error _ -> [||]);
  let st =
    {
      dir;
      snaps_dir;
      quarantine_dir;
      index_path;
      max_bytes;
      inject;
      write_ops = 0;
      rows;
      index_lines = lines;
      counters = Metrics.store_create ();
      log;
    }
  in
  if lines - List.length rows > compact_threshold then compact st;
  st

(* ------------------------------------------------------------------ *)
(* Quarantine, eviction, put                                           *)
(* ------------------------------------------------------------------ *)

(* Corrupt snapshots are moved, never deleted: the bytes stay available
   for a post-mortem, and the store stops consulting them. *)
let quarantine st key ~why =
  (try Sys.rename (snap_path st key) (quarantine_path st key)
   with Sys_error _ -> ());
  append_index_soft st (Printf.sprintf "v1\tdel\t%s\tcorrupt" key);
  drop_row st key;
  st.counters.Metrics.corrupt_quarantined <-
    st.counters.Metrics.corrupt_quarantined + 1;
  st.log (Printf.sprintf "quarantined snapshot %s: %s" key why)

let rec evict st =
  let total = List.fold_left (fun a r -> a + r.r_size) 0 st.rows in
  if total > st.max_bytes && List.length st.rows > 1 then begin
    match List.rev st.rows with
    | oldest :: _ ->
        (try Sys.remove (snap_path st oldest.r_key) with Sys_error _ -> ());
        append_index_soft st
          (Printf.sprintf "v1\tdel\t%s\tevict" oldest.r_key);
        drop_row st oldest.r_key;
        st.counters.Metrics.evictions <- st.counters.Metrics.evictions + 1;
        st.log (Printf.sprintf "evicted snapshot %s" oldest.r_key);
        evict st
    | [] -> ()
  end

let put st ~key ~cfg_digest (bytes : string) : unit =
  let dest = snap_path st key in
  let temp = dest ^ ".tmp" in
  match atomic_write st ~temp ~dest bytes with
  | () ->
      st.counters.Metrics.snapshots_written <-
        st.counters.Metrics.snapshots_written + 1;
      append_index_soft st
        (Printf.sprintf "v1\tadd\t%s\t%s\t%d" key cfg_digest
           (String.length bytes));
      drop_row st key;
      st.rows <-
        { r_key = key; r_cfg = cfg_digest; r_size = String.length bytes }
        :: st.rows;
      evict st
  | exception (Crashed | Sys_error _ | Unix.Unix_error _) ->
      (* not stored; the answer this run computed is unaffected *)
      st.counters.Metrics.write_failures <-
        st.counters.Metrics.write_failures + 1;
      st.log (Printf.sprintf "snapshot write failed for %s" key)

let touch st key = append_index_soft st ("v1\ttouch\t" ^ key)

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

(* Exact lookup probes the snapshot file directly — content addressing
   makes the filesystem the authoritative index; index rows only feed
   recency, sizes, and the ancestor scan. *)
let lookup_exact st key : Codec.decoded option =
  let path = snap_path st key in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error why ->
        st.log (Printf.sprintf "unreadable snapshot %s: %s" key why);
        None
    | bytes -> (
        match Codec.decode bytes with
        | Ok d when Codec.decoded_key d = key -> Some d
        | Ok _ ->
            quarantine st key ~why:"key does not match its content";
            None
        | Error why ->
            quarantine st key ~why;
            None)

let ancestor_scan_cap = 8

let find_ancestor st ~cfg_digest ~exact_key ~request_keys :
    (Codec.decoded * int) option =
  let req_n = List.length request_keys in
  let limit = max 1 (req_n / 2) in
  let candidates =
    List.filteri
      (fun i _ -> i < ancestor_scan_cap)
      (List.filter
         (fun r -> r.r_cfg = cfg_digest && r.r_key <> exact_key)
         st.rows)
  in
  List.fold_left
    (fun best r ->
      match lookup_exact st r.r_key with
      | None -> best
      | Some d -> (
          match Codec.ancestor_distance d ~request_keys with
          | Some dist
            when dist <= limit
                 && (match best with
                    | None -> true
                    | Some (_, b) -> dist < b) ->
              Some (d, dist)
          | _ -> best))
    None candidates

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

type origin = [ `Hit | `Ancestor of int | `Cold ]

type served = {
  sv_json : string;
  sv_result : Analysis.result option;
  sv_origin : origin;
}

let serve st ~(want : [ `Json | `Solver ]) ~(diags : Diag.payload list)
    ~name ~strategy_id ~engine ~layout ~layout_id ?(arith = `Spread)
    ~budget ?cold (prog : Nast.program) : served =
  let cold_override = cold in
  let strategy =
    match Analysis.strategy_of_id strategy_id with
    | Some s -> s
    | None -> invalid_arg ("store: unknown strategy " ^ strategy_id)
  in
  let cfg =
    { Codec.strategy_id; engine; layout_id; arith; budget }
  in
  let cfg_digest = Codec.config_digest cfg in
  let diags_fp = String.concat "" (List.map Report.json_of_diag diags) in
  let key = Codec.key cfg ~name ~diags_fp prog in
  let c = st.counters in
  let mk_result solver time_s =
    {
      Analysis.solver;
      metrics = Metrics.summarize solver;
      time_s;
      degraded = Solver.degradations solver;
      diags;
    }
  in
  let render r = Report.json_of_result ~timing:false ~solver_stats:false ~name r in
  let save solver json =
    if Solver.degradations solver = [] then
      match Codec.encode solver ~config:cfg ~name ~key ~report_json:json with
      | Ok bytes -> put st ~key ~cfg_digest bytes
      | Error why -> st.log ("snapshot refused: " ^ why)
  in
  (* restore + resume; [added] empty on an exact repeat, so the resume
     returns without one solver visit *)
  let warm d =
    match Codec.restore d ~config:cfg ~layout ~strategy prog with
    | Error why ->
        quarantine st (Codec.decoded_key d) ~why:("restore: " ^ why);
        None
    | Ok (solver, added) ->
        let t0 = Sys.time () in
        List.iter (Solver.enqueue solver) added;
        Solver.resume solver;
        solver.Solver.incr_stmts_added <- List.length added;
        solver.Solver.incr_warm_visits <- solver.Solver.rounds;
        Some (solver, added, Sys.time () -. t0)
  in
  let cold () =
    let t0 = Sys.time () in
    let solver =
      match cold_override with
      | Some f -> f ()
      | None ->
          Solver.run ~layout ~arith ~budget ~engine ~track:true ~strategy prog
    in
    let r = mk_result solver (Sys.time () -. t0) in
    let json = render r in
    save solver json;
    { sv_json = json; sv_result = Some r; sv_origin = `Cold }
  in
  let miss () =
    c.Metrics.misses <- c.Metrics.misses + 1;
    match
      find_ancestor st ~cfg_digest ~exact_key:key
        ~request_keys:(Codec.stmt_keys prog)
    with
    | None -> cold ()
    | Some (d, dist) -> (
        match warm d with
        | None -> cold ()
        | Some (solver, _, dt) ->
            c.Metrics.ancestor_warm_starts <-
              c.Metrics.ancestor_warm_starts + 1;
            touch st (Codec.decoded_key d);
            let r = mk_result solver dt in
            let json = render r in
            save solver json;
            { sv_json = json; sv_result = Some r; sv_origin = `Ancestor dist })
  in
  match lookup_exact st key with
  | None -> miss ()
  | Some d -> (
      match want with
      | `Json ->
          c.Metrics.hits <- c.Metrics.hits + 1;
          touch st key;
          {
            sv_json = Codec.decoded_report d;
            sv_result = None;
            sv_origin = `Hit;
          }
      | `Solver -> (
          match warm d with
          | None -> miss () (* quarantined by [warm] *)
          | Some (solver, _, dt) ->
              c.Metrics.hits <- c.Metrics.hits + 1;
              touch st key;
              let r = mk_result solver dt in
              {
                sv_json = Codec.decoded_report d;
                sv_result = Some r;
                sv_origin = `Hit;
              }))

(* Splice the counter block into a report object so a fault is visible
   in the run that saw it, without ever entering the report proper. *)
let with_counters st (json : string) : string =
  let n = String.length json in
  if n >= 2 && json.[n - 1] = '}' then
    String.sub json 0 (n - 1)
    ^ ",\"store\":"
    ^ Metrics.store_json st.counters
    ^ "}"
  else json
