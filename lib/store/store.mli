(** Crash-safe content-addressed fixpoint store.

    A store directory caches solved fixpoints keyed by a digest of
    (normalized program × strategy × engine × layout × arithmetic mode
    × budget × diagnostics): an exact repeat of an analysis is served
    in O(1) with zero solver visits, and a near-repeat warm-starts from
    the nearest cached additive ancestor. The cache is an accelerator
    only — the governing invariant is that {b a corrupt or adversarial
    store can cost time but never change a report}: every snapshot is
    verified (checksum, format version, range checks, graph audit)
    before anything is trusted, and any failure degrades to a scratch
    solve of the request program.

    {b Layout.} [DIR/index.log] — append-only, fsync'd recency/size
    log whose torn tail (a write that died mid-line) is dropped on
    load; [DIR/snaps/<key>.snap] — one snapshot per key, written
    temp + fsync + rename so a crash never leaves a half-visible file;
    [DIR/quarantine/] — snapshots that failed verification, moved
    (never deleted) for post-mortem. Stray [.tmp] files — a crash
    between fsync and rename — are removed at open.

    {b Eviction.} Least-recently-used by total snapshot bytes against
    [max_bytes]; recency is index-log line order (an exact hit appends
    a [touch] line). The log compacts at open once dead lines
    accumulate.

    {b Faults.} Every physical write draws an ordinal from the
    injection hook, letting tests deterministically tear a write, flip
    a bit, fail with ENOSPC, or die between fsync and rename
    ([lib/server]'s [Faults.store_hook] builds the hook from a plan
    string). All injected failures are contained: counted in
    {!Core.Metrics.store}, logged, and never able to reach a report. *)

open Cfront
open Norm
open Core

module Codec : module type of Codec

type fault = Short_write | Bit_flip | Enospc | Crash_rename
(** One injected write fault. [Short_write] truncates the payload but
    completes the operation (the checksum catches it at next load);
    [Bit_flip] corrupts one bit mid-payload; [Enospc] fails before any
    byte is written; [Crash_rename] leaves a durable temp file but
    never makes it visible — kill -9 between fsync and rename. *)

type t

val open_store :
  ?max_bytes:int ->
  ?inject:(int -> fault option) ->
  ?log:(string -> unit) ->
  string ->
  t
(** Open (creating if needed) a store directory: load the index with
    torn-tail recovery, compact it if stale, sweep crash leftovers.
    [inject] is consulted with a 1-based write ordinal before every
    physical write (default: no faults). [log] receives operational
    warnings — quarantines, eviction, contained write failures — and
    must never feed report output (default: drop them). [max_bytes]
    defaults to 256 MiB. *)

(** How a request was satisfied. *)
type origin =
  [ `Hit  (** exact key: the stored snapshot served the request *)
  | `Ancestor of int
    (** warm-started from a cached additive ancestor [n] statements
        away *)
  | `Cold  (** solved from scratch (and cached if clean) *) ]

type served = {
  sv_json : string;
      (** stats-free report JSON ({!Core.Report.json_of_result} with
          [~timing:false ~solver_stats:false]) — byte-identical to what
          a scratch solve of the same request renders, whatever
          [sv_origin] says *)
  sv_result : Analysis.result option;
      (** the live solved state; [None] only for an exact hit served in
          [`Json] mode, which never builds a solver *)
  sv_origin : origin;
}

val serve :
  t ->
  want:[ `Json | `Solver ] ->
  diags:Diag.payload list ->
  name:string ->
  strategy_id:string ->
  engine:Solver.engine ->
  layout:Layout.config ->
  layout_id:string ->
  ?arith:Codec.arith ->
  budget:Budget.limits ->
  ?cold:(unit -> Solver.t) ->
  Nast.program ->
  served
(** Satisfy one analysis request through the store. Exact hit in
    [`Json] mode: the stored report, no solving. Exact hit in
    [`Solver] mode: the snapshot restored and resumed — zero solver
    visits. Miss: the nearest cached additive ancestor (same
    configuration, statement-key multiset contained in the request's,
    distance at most half the request) is restored, the added
    statements enqueued, and the fixpoint resumed warm; with no usable
    ancestor, a scratch solve. Clean (non-degraded) misses are cached.
    [diags] are the front-end diagnostics destined for the report —
    part of the key, because the stored report embeds them. *)

val counters : t -> Metrics.store
(** This handle's counters (hits, misses, ancestor warm starts,
    quarantines, evictions, write failures), accumulated across
    {!serve} calls. *)

val with_counters : t -> string -> string
(** Splice [,"store":{...}] into a report JSON object, after all report
    fields: the counter block is observability, not part of the
    report's determinism contract. *)

(** {2 Test access} *)

val snap_path : t -> string -> string
val quarantine_path : t -> string -> string

val live : t -> (string * int) list
(** Live (key, size) rows, most recent first. *)
