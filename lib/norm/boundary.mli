(** Function-boundary metadata read off normalized bodies: the direct
    call-graph edges, indirect-call presence, and the address-taken
    function set. [lib/summary] builds its call-graph condensation and
    summary keys from these; they are also what a reader needs to judge
    whether a function's behaviour can be captured caller-independently. *)

val direct_callees : Nast.func -> string list
(** Names a function calls through [Nast.Direct] call statements,
    sorted, duplicates removed. Includes externs and undefined names —
    callers filter against the program's definitions. *)

val has_indirect_call : Nast.func -> bool
(** Whether any call statement in the body goes through a function
    pointer ([Nast.Indirect]). Such callees are resolved from the
    points-to fixpoint, not the syntax. *)

val address_taken : Nast.program -> string list
(** Functions whose address escapes into the points-to world: the
    [Cvar.Funval] bases of address-of statements anywhere in the
    program (including global initializers), sorted, duplicates
    removed. Exactly these can be targets of an indirect call. *)
