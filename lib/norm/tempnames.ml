(** Positional canonicalization of lowering temporaries.

    {!Lower.fresh_temp} names temporaries from a single program-wide
    counter ([$t1], [$t2], …), so inserting one statement mid-function
    renumbers every later temporary in the program. Identity-free keys
    built from variable names ([Incr.Progdiff.var_key], the store
    codec's statement keys, per-function summary digests) then see every
    downstream statement as changed, which defeats the store's additive
    ancestor match and summary reuse for what was a one-line edit.

    This pass renames each temporary from its first occurrence: the
    containing statement's {e erased shape} (temporaries print as a
    placeholder, everything else as qualified name + type), the
    statement's ordinal among same-shaped statements of its scope, and
    the temporary's position within the statement. The name
    [$t<shape-hash>_<ordinal>_<position>] is unique within the scope
    (one slot of one statement holds one variable) and — the point —
    stable under insertion: a new statement elsewhere in the function
    changes no existing statement's shape, and ordinals only shift for
    later statements of the {e same} shape, a bounded perturbation
    instead of a program-wide one.

    Scopes are processed independently (global initializers under
    ["<init>"], then each function), matching the [Temp of scope]
    variable kind, so renames never leak across functions. *)

open Cfront

module Itbl = Hashtbl.Make (Int)

(* Erased token: temporaries become a placeholder carrying only their
   type (their names are what this pass is erasing); everything else
   contributes its qualified name and type. *)
let token (v : Cvar.t) : string =
  match v.Cvar.vkind with
  | Cvar.Temp _ -> "$T:" ^ Ctype.to_string v.Cvar.vty
  | _ -> Cvar.qualified_name v ^ ":" ^ Ctype.to_string v.Cvar.vty

let path_str (p : Ctype.path) = Ctype.path_to_string p

let shape (k : Nast.kind) : string =
  match k with
  | Nast.Addr (s, t, b) ->
      Printf.sprintf "A|%s|%s|%s" (token s) (token t) (path_str b)
  | Nast.Addr_deref (s, p, a) ->
      Printf.sprintf "D|%s|%s|%s" (token s) (token p) (path_str a)
  | Nast.Copy (s, t, b) ->
      Printf.sprintf "C|%s|%s|%s" (token s) (token t) (path_str b)
  | Nast.Load (s, q) -> Printf.sprintf "L|%s|%s" (token s) (token q)
  | Nast.Store (p, v) -> Printf.sprintf "S|%s|%s" (token p) (token v)
  | Nast.Arith (s, v) -> Printf.sprintf "R|%s|%s" (token s) (token v)
  | Nast.Call { Nast.cret; cfn; cargs } ->
      Printf.sprintf "K|%s|%s|%s"
        (match cret with Some r -> token r | None -> "")
        (match cfn with
        | Nast.Direct n -> "d:" ^ n
        | Nast.Indirect v -> "i:" ^ token v)
        (String.concat "," (List.map token cargs))

(* Variables of a statement in positional order, the order the name's
   [<position>] component indexes. *)
let vars_of_kind (k : Nast.kind) : Cvar.t list =
  match k with
  | Nast.Addr (s, t, _)
  | Nast.Addr_deref (s, t, _)
  | Nast.Copy (s, t, _)
  | Nast.Load (s, t)
  | Nast.Store (s, t)
  | Nast.Arith (s, t) ->
      [ s; t ]
  | Nast.Call { Nast.cret; cfn; cargs } ->
      Option.to_list cret
      @ (match cfn with Nast.Direct _ -> [] | Nast.Indirect v -> [ v ])
      @ cargs

let map_kind (f : Cvar.t -> Cvar.t) (k : Nast.kind) : Nast.kind =
  match k with
  | Nast.Addr (s, t, b) -> Nast.Addr (f s, f t, b)
  | Nast.Addr_deref (s, p, a) -> Nast.Addr_deref (f s, f p, a)
  | Nast.Copy (s, t, b) -> Nast.Copy (f s, f t, b)
  | Nast.Load (s, q) -> Nast.Load (f s, f q)
  | Nast.Store (p, v) -> Nast.Store (f p, f v)
  | Nast.Arith (s, v) -> Nast.Arith (f s, f v)
  | Nast.Call { Nast.cret; cfn; cargs } ->
      Nast.Call
        {
          Nast.cret = Option.map f cret;
          cfn =
            (match cfn with
            | Nast.Direct n -> Nast.Direct n
            | Nast.Indirect v -> Nast.Indirect (f v));
          cargs = List.map f cargs;
        }

(* Extend [rename] (vid → replacement) with canonical names for every
   temporary of one scope's statement list. *)
let rename_scope (rename : Cvar.t Itbl.t) (stmts : Nast.stmt list) : unit =
  let shapes = List.map (fun (s : Nast.stmt) -> shape s.Nast.kind) stmts in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter2
    (fun (s : Nast.stmt) sh ->
      let ord = Option.value (Hashtbl.find_opt seen sh) ~default:0 in
      Hashtbl.replace seen sh (ord + 1);
      let h = String.sub (Digest.to_hex (Digest.string sh)) 0 8 in
      List.iteri
        (fun pos (v : Cvar.t) ->
          match v.Cvar.vkind with
          | Cvar.Temp _ when not (Itbl.mem rename v.Cvar.vid) ->
              Itbl.replace rename v.Cvar.vid
                (Cvar.fresh
                   ~name:(Printf.sprintf "$t%s_%d_%d" h ord pos)
                   ~ty:v.Cvar.vty ~kind:v.Cvar.vkind)
          | _ -> ())
        (vars_of_kind s.Nast.kind))
    stmts shapes

(** Rename every temporary of [prog] to its positional canonical name.
    Statements, function records, and [pall_vars] are rebuilt; all other
    variables keep their identity. *)
let canonicalize (prog : Nast.program) : Nast.program =
  let rename : Cvar.t Itbl.t = Itbl.create 128 in
  rename_scope rename prog.Nast.pinit;
  List.iter (fun (f : Nast.func) -> rename_scope rename f.Nast.fstmts) prog.Nast.pfuncs;
  if Itbl.length rename = 0 then prog
  else begin
    let subst (v : Cvar.t) =
      match Itbl.find_opt rename v.Cvar.vid with Some v' -> v' | None -> v
    in
    let map_stmt (s : Nast.stmt) =
      { s with Nast.kind = map_kind subst s.Nast.kind }
    in
    {
      prog with
      Nast.pinit = List.map map_stmt prog.Nast.pinit;
      pfuncs =
        List.map
          (fun (f : Nast.func) ->
            { f with Nast.fstmts = List.map map_stmt f.Nast.fstmts })
          prog.Nast.pfuncs;
      pall_vars = List.map subst prog.Nast.pall_vars;
    }
  end
