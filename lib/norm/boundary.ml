(** Function-boundary metadata; see the interface. *)

open Cfront

let direct_callees (f : Nast.func) : string list =
  List.sort_uniq compare
    (List.filter_map
       (fun (s : Nast.stmt) ->
         match s.Nast.kind with
         | Nast.Call { Nast.cfn = Nast.Direct n; _ } -> Some n
         | _ -> None)
       f.Nast.fstmts)

let has_indirect_call (f : Nast.func) : bool =
  List.exists
    (fun (s : Nast.stmt) ->
      match s.Nast.kind with
      | Nast.Call { Nast.cfn = Nast.Indirect _; _ } -> true
      | _ -> false)
    f.Nast.fstmts

let address_taken (p : Nast.program) : string list =
  let of_stmt (s : Nast.stmt) =
    match s.Nast.kind with
    | Nast.Addr (_, t, _) -> (
        match t.Cvar.vkind with Cvar.Funval n -> Some n | _ -> None)
    | _ -> None
  in
  List.sort_uniq compare (List.filter_map of_stmt (Nast.all_stmts p))
