(** Lowering: typed C ({!Cfront.Tast}) to normalized programs ({!Nast}).

    Every assignment in the source is decomposed, via fresh temporaries,
    into the paper's five forms (see {!Nast}). Key behaviours:

    - casts become copies into temporaries declared at the cast type, so
      the inference rules see the correct [τ] without explicit cast nodes;
    - array subscripts are direct accesses on the array object; explicit
      pointer arithmetic produces {!Nast.Arith};
    - every scalar copy is modelled, whatever its type (a [double] may
      carry pointer bytes after casting — paper Complications 2 and 3);
    - [p = malloc(...)] introduces an allocation-site pseudo-variable
      typed by the declared pointee of the receiving pointer;
    - control flow is walked only for the assignments it contains (the
      analysis is flow-insensitive). *)

val lower : Cfront.Tast.program -> Nast.program
(** Lower a type-checked program. *)

val compile :
  ?layout:Cfront.Layout.config ->
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  ?diags:Cfront.Diag.ctx ->
  file:string ->
  string ->
  Nast.program
(** One-call pipeline: preprocess, parse, type-check, lower. With
    [~diags], front-end errors accumulate there, parser and checker
    recover, and the partial program is lowered; without it, the first
    front-end failure raises {!Cfront.Diag.Error}. *)
