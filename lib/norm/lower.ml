(** Lowering: typed C ({!Cfront.Tast}) to normalized programs ({!Nast}).

    Every assignment in the source is decomposed, via fresh temporaries,
    into the paper's five forms. Design points (also in DESIGN.md):

    - Casts become copies into temporaries {e declared} at the cast type,
      so the inference rules see the right [τ] without explicit cast nodes.
    - Array subscripts are direct accesses on the array object (single
      representative element); only explicit pointer arithmetic produces
      {!Nast.Arith}, which under Assumption 1 makes the result point to any
      cell of the objects involved.
    - Every scalar copy is modelled, whatever its type: a [double] or [int]
      may carry pointer bytes after casting (Complications 2 and 3).
    - [p = malloc(...)] introduces an allocation-site pseudo-variable whose
      type is the declared pointee of the receiving pointer (or of the
      enclosing cast).
    - Control flow is walked only for the assignments it contains — the
      analysis is flow-insensitive. *)

open Cfront

type ctx = {
  prog : Tast.program;
  mutable out : Nast.stmt list;  (** reversed *)
  mutable stmt_id : int;
  mutable temp_id : int;
  mutable heap_id : int;
  mutable cur_fun : string;
  strlits : (string, Cvar.t) Hashtbl.t;
  statics : (string, Cvar.t) Hashtbl.t;
  mutable extra_vars : Cvar.t list;
  mutable locals : Cvar.t list;
}

let emit ?(deref = false) ctx kind loc =
  ctx.stmt_id <- ctx.stmt_id + 1;
  ctx.out <-
    { Nast.id = ctx.stmt_id; kind; loc; is_source_deref = deref } :: ctx.out

let fresh_temp ctx ty : Cvar.t =
  ctx.temp_id <- ctx.temp_id + 1;
  let v =
    Cvar.fresh
      ~name:(Printf.sprintf "$t%d" ctx.temp_id)
      ~ty ~kind:(Cvar.Temp ctx.cur_fun)
  in
  ctx.extra_vars <- v :: ctx.extra_vars;
  v

let strlit_obj ctx s : Cvar.t =
  match Hashtbl.find_opt ctx.strlits s with
  | Some v -> v
  | None ->
      let id = Hashtbl.length ctx.strlits in
      let v =
        Cvar.fresh
          ~name:(Printf.sprintf "$str%d" id)
          ~ty:(Ctype.Array (Ctype.char_t, Some (String.length s + 1)))
          ~kind:(Cvar.Strlit id)
      in
      Hashtbl.replace ctx.strlits s v;
      ctx.extra_vars <- v :: ctx.extra_vars;
      v

let static_obj ctx name ty : Cvar.t =
  match Hashtbl.find_opt ctx.statics name with
  | Some v -> v
  | None ->
      let v =
        Cvar.fresh ~name:(Printf.sprintf "$static_%s" name) ~ty
          ~kind:Cvar.Global
      in
      Hashtbl.replace ctx.statics name v;
      ctx.extra_vars <- v :: ctx.extra_vars;
      v

let heap_obj ctx ~prefix ~ty loc : Cvar.t =
  ctx.heap_id <- ctx.heap_id + 1;
  let v =
    Cvar.fresh
      ~name:(Printf.sprintf "$%s%d" prefix ctx.heap_id)
      ~ty
      ~kind:(Cvar.Heap (loc, ctx.heap_id))
  in
  ctx.extra_vars <- v :: ctx.extra_vars;
  v

(* ------------------------------------------------------------------ *)
(* L-values                                                            *)
(* ------------------------------------------------------------------ *)

type lval =
  | Lvar of Cvar.t * Ctype.path  (** direct access [t.β] *)
  | Lmem of Cvar.t * Ctype.path  (** indirect access [( *p).α] *)

(** A value of scalar or aggregate type may carry pointer data; only such
    types need temporaries with fact-flow. (All do, conservatively.) *)

let rec rv ?hint ctx (e : Tast.texpr) : Cvar.t =
  let loc = e.Tast.tloc in
  match e.Tast.te with
  | Tast.Tconst_int _ | Tast.Tconst_float _ ->
      (* a literal points to nothing: a fresh fact-free temp *)
      fresh_temp ctx e.Tast.tty
  | Tast.Tconst_str s ->
      let obj = strlit_obj ctx s in
      let tmp = fresh_temp ctx (Ctype.Ptr Ctype.char_t) in
      emit ctx (Nast.Addr (tmp, obj, [])) loc;
      tmp
  | Tast.Tvar v -> (
      match v.Cvar.vty with
      | Ctype.Array (elem, _) ->
          (* array decays to pointer to representative element *)
          let tmp = fresh_temp ctx (Ctype.Ptr elem) in
          emit ctx (Nast.Addr (tmp, v, [])) loc;
          tmp
      | Ctype.Func _ when v.Cvar.vkind = Cvar.Funval v.Cvar.vname ->
          let tmp = fresh_temp ctx (Ctype.Ptr v.Cvar.vty) in
          emit ctx (Nast.Addr (tmp, v, [])) loc;
          tmp
      | _ -> v)
  | Tast.Tcast (ty, inner) -> (
      match alloc_call ctx inner with
      | Some _ ->
          (* let the call lowering see the cast's pointee as heap hint *)
          let hint =
            match ty with Ctype.Ptr t -> Some t | _ -> hint
          in
          let v = rv ?hint ctx inner in
          retype ctx v ty loc
      | None ->
          let v = rv ?hint ctx inner in
          retype ctx v ty loc)
  | Tast.Tassign (op, l, r) -> lower_assign ctx ~loc op l r
  | Tast.Tcomma (a, b) ->
      ignore (rv ctx a);
      rv ?hint ctx b
  | Tast.Tcond (_c, a, b) ->
      ignore (rv ctx _c);
      let va = rv ?hint ctx a in
      let vb = rv ?hint ctx b in
      let tmp = fresh_temp ctx e.Tast.tty in
      emit ctx (Nast.Copy (tmp, va, [])) loc;
      emit ctx (Nast.Copy (tmp, vb, [])) loc;
      tmp
  | Tast.Tunary (op, a) -> lower_unary ctx ~loc ~ty:e.Tast.tty op a
  | Tast.Tbinary (op, a, b) -> lower_binary ctx ~loc ~ty:e.Tast.tty op a b
  | Tast.Tcall (f, args) -> (
      match lower_call ?hint ctx ~loc f args ~want_ret:true with
      | Some v -> v
      | None -> fresh_temp ctx e.Tast.tty)
  | Tast.Taddrof a -> (
      match a.Tast.te with
      | Tast.Tvar v when Ctype.is_func v.Cvar.vty ->
          let tmp = fresh_temp ctx (Ctype.Ptr v.Cvar.vty) in
          emit ctx (Nast.Addr (tmp, v, [])) loc;
          tmp
      | _ -> (
          match lower_lvalue ctx a with
          | Lvar (t, beta) ->
              let tmp = fresh_temp ctx e.Tast.tty in
              emit ctx (Nast.Addr (tmp, t, beta)) loc;
              tmp
          | Lmem (p, []) ->
              (* &*p is p *)
              retype ctx p e.Tast.tty loc
          | Lmem (p, alpha) ->
              let tmp = fresh_temp ctx e.Tast.tty in
              emit ~deref:true ctx (Nast.Addr_deref (tmp, p, alpha)) loc;
              tmp))
  | Tast.Tderef _ | Tast.Tindex _ | Tast.Tfield _ ->
      let l = lower_lvalue ctx e in
      read_lval ctx ~loc ~ty:e.Tast.tty l

(** Copy [v] into a fresh temporary declared at type [ty] (materialized
    cast). Skipped when the types already agree. *)
and retype ctx v ty loc : Cvar.t =
  if Ctype.equal v.Cvar.vty ty then v
  else begin
    let tmp = fresh_temp ctx ty in
    emit ctx (Nast.Copy (tmp, v, [])) loc;
    tmp
  end

and alloc_call _ctx (e : Tast.texpr) : string option =
  match e.Tast.te with
  | Tast.Tcall ({ Tast.te = Tast.Tvar f; _ }, _) -> (
      match f.Cvar.vkind with
      | Cvar.Funval n when Summaries.is_alloc n -> Some n
      | _ -> None)
  | _ -> None

and lower_unary ctx ~loc ~ty op a : Cvar.t =
  match op with
  | Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec ->
      let l = lower_lvalue ctx a in
      let old = read_lval ctx ~loc ~ty:a.Tast.tty l in
      let tmp = fresh_temp ctx ty in
      emit ctx (Nast.Arith (tmp, old)) loc;
      write_lval ctx ~loc l tmp;
      if op = Ast.Postinc || op = Ast.Postdec then old else tmp
  | Ast.Neg | Ast.Pos | Ast.Bitnot ->
      let v = rv ctx a in
      let tmp = fresh_temp ctx ty in
      emit ctx (Nast.Arith (tmp, v)) loc;
      tmp
  | Ast.Lognot ->
      ignore (rv ctx a);
      fresh_temp ctx ty

and lower_binary ctx ~loc ~ty op a b : Cvar.t =
  let va = rv ctx a in
  let vb = rv ctx b in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Shl | Ast.Shr
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor ->
      (* Assumption 1: arithmetic involving a (possibly disguised) pointer
         yields a pointer to any sub-field of the same objects *)
      let tmp = fresh_temp ctx ty in
      emit ctx (Nast.Arith (tmp, va)) loc;
      emit ctx (Nast.Arith (tmp, vb)) loc;
      tmp
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Logand
  | Ast.Logor ->
      (* comparison results are 0/1: never pointer-bearing *)
      fresh_temp ctx ty

and lower_assign ctx ~loc op l r : Cvar.t =
  let lv = lower_lvalue ctx l in
  match op with
  | None -> (
      let hint =
        match l.Tast.tty with Ctype.Ptr t -> Some t | _ -> None
      in
      match lv with
      | Lvar (t, []) ->
          (* destination is a plain variable: emit the paper form
             directly instead of going through a temporary *)
          lower_rhs_into ?hint ctx ~loc t r;
          t
      | _ ->
          let v = rv ?hint ctx r in
          let v = retype ctx v (decayed l.Tast.tty) loc in
          write_lval ctx ~loc lv v;
          v)
  | Some bop ->
      let old = read_lval ctx ~loc ~ty:l.Tast.tty lv in
      let vr = rv ctx r in
      let tmp = fresh_temp ctx (decayed l.Tast.tty) in
      (match bop with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Shl | Ast.Shr
      | Ast.Bitand | Ast.Bitor | Ast.Bitxor ->
          emit ctx (Nast.Arith (tmp, old)) loc;
          emit ctx (Nast.Arith (tmp, vr)) loc
      | _ -> ());
      write_lval ctx ~loc lv tmp;
      tmp

and decayed ty =
  match ty with
  | Ctype.Array (t, _) -> Ctype.Ptr t
  | t -> t

(** Lower [t = r] emitting one of the paper's forms directly where the
    right-hand side is simple; falls back to [rv] + Copy otherwise. The
    declared type the inference rules consult is always [t]'s, so casts on
    [r] need no temporary here. *)
and lower_rhs_into ?hint ctx ~loc (t : Cvar.t) (r : Tast.texpr) : unit =
  match r.Tast.te with
  | Tast.Tcast (ty, inner) when alloc_call ctx inner = None ->
      let hint = match ty with Ctype.Ptr p -> Some p | _ -> hint in
      lower_rhs_into ?hint ctx ~loc t inner
  | Tast.Tconst_str s -> emit ctx (Nast.Addr (t, strlit_obj ctx s, [])) loc
  | Tast.Taddrof a -> (
      match a.Tast.te with
      | Tast.Tvar v when Ctype.is_func v.Cvar.vty ->
          emit ctx (Nast.Addr (t, v, [])) loc
      | _ -> (
          match lower_lvalue ctx a with
          | Lvar (obj, beta) -> emit ctx (Nast.Addr (t, obj, beta)) loc
          | Lmem (p, []) -> emit ctx (Nast.Copy (t, p, [])) loc
          | Lmem (p, alpha) ->
              emit ~deref:true ctx (Nast.Addr_deref (t, p, alpha)) loc))
  | Tast.Tvar v
    when (not (Ctype.is_array v.Cvar.vty)) && not (Ctype.is_func v.Cvar.vty)
    ->
      emit ctx (Nast.Copy (t, v, [])) loc
  | (Tast.Tfield _ | Tast.Tindex _ | Tast.Tderef _)
    when not (Ctype.is_array r.Tast.tty) -> (
      match lower_lvalue ctx r with
      | Lvar (obj, beta) -> emit ctx (Nast.Copy (t, obj, beta)) loc
      | Lmem (p, []) -> emit ~deref:true ctx (Nast.Load (t, p)) loc
      | Lmem (p, alpha) ->
          let addr = fresh_temp ctx (Ctype.Ptr r.Tast.tty) in
          emit ~deref:true ctx (Nast.Addr_deref (addr, p, alpha)) loc;
          emit ctx (Nast.Load (t, addr)) loc)
  | _ ->
      let v = rv ?hint ctx r in
      if not (Cvar.equal v t) then emit ctx (Nast.Copy (t, v, [])) loc

and lower_lvalue ctx (e : Tast.texpr) : lval =
  match e.Tast.te with
  | Tast.Tvar v -> Lvar (v, [])
  | Tast.Tfield (b, f) -> (
      match lower_lvalue ctx b with
      | Lvar (t, beta) -> Lvar (t, beta @ [ f ])
      | Lmem (p, alpha) -> Lmem (p, alpha @ [ f ]))
  | Tast.Tderef p -> Lmem (rv ctx p, [])
  | Tast.Tindex (a, i) ->
      let zero_index =
        match i.Tast.te with Tast.Tconst_int 0L -> true | _ -> false
      in
      ignore (rv ctx i);
      if Ctype.is_array a.Tast.tty then
        (* subscripting the array object: same cells as the object *)
        lower_lvalue ctx a
      else begin
        (* p[i] is *(p ⊕ i): index arithmetic on a pointer falls under
           the Assumption-1 rule, except for the exact p[0] *)
        let base = rv ctx a in
        if zero_index then Lmem (base, [])
        else begin
          let addr = fresh_temp ctx base.Cvar.vty in
          emit ctx (Nast.Arith (addr, base)) a.Tast.tloc;
          Lmem (addr, [])
        end
      end
  | Tast.Tcast (_, inner) ->
      (* cast-as-lvalue (a GNU-ism): analyze through it *)
      lower_lvalue ctx inner
  | Tast.Tconst_str s -> Lvar (strlit_obj ctx s, [])
  | _ ->
      (* not a syntactic lvalue: evaluate to a temp *)
      let v = rv ctx e in
      Lvar (v, [])

and read_lval ctx ~loc ~ty (l : lval) : Cvar.t =
  match l with
  | Lvar (t, []) -> t
  | Lvar (t, beta) ->
      if Ctype.is_array ty then begin
        (* reading an array-typed field: its value is a pointer to it *)
        let tmp = fresh_temp ctx (decayed ty) in
        emit ctx (Nast.Addr (tmp, t, beta)) loc;
        tmp
      end
      else begin
        let tmp = fresh_temp ctx ty in
        emit ctx (Nast.Copy (tmp, t, beta)) loc;
        tmp
      end
  | Lmem (p, []) ->
      if Ctype.is_array ty then retype ctx p (decayed ty) loc
      else begin
        let tmp = fresh_temp ctx ty in
        emit ~deref:true ctx (Nast.Load (tmp, p)) loc;
        tmp
      end
  | Lmem (p, alpha) ->
      let addr = fresh_temp ctx (Ctype.Ptr ty) in
      emit ~deref:true ctx (Nast.Addr_deref (addr, p, alpha)) loc;
      if Ctype.is_array ty then retype ctx addr (decayed ty) loc
      else begin
        let tmp = fresh_temp ctx ty in
        emit ctx (Nast.Load (tmp, addr)) loc;
        tmp
      end

and write_lval ctx ~loc (l : lval) (v : Cvar.t) : unit =
  match l with
  | Lvar (t, []) -> emit ctx (Nast.Copy (t, v, [])) loc
  | Lvar (t, beta) ->
      let fty = Ctype.type_at_path t.Cvar.vty beta in
      let addr = fresh_temp ctx (Ctype.Ptr fty) in
      emit ctx (Nast.Addr (addr, t, beta)) loc;
      emit ctx (Nast.Store (addr, v)) loc
  | Lmem (p, []) -> emit ~deref:true ctx (Nast.Store (p, v)) loc
  | Lmem (p, alpha) ->
      let fty =
        match p.Cvar.vty with
        | Ctype.Ptr t -> (
            try Ctype.type_at_path (Ctype.strip_arrays t) alpha
            with Diag.Error _ -> Ctype.Void)
        | _ -> Ctype.Void
      in
      let addr = fresh_temp ctx (Ctype.Ptr fty) in
      emit ~deref:true ctx (Nast.Addr_deref (addr, p, alpha)) loc;
      emit ctx (Nast.Store (addr, v)) loc

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and lower_call ?hint ctx ~loc (f : Tast.texpr) (args : Tast.texpr list)
    ~want_ret : Cvar.t option =
  (* resolve the callee *)
  let callee, ret_ty =
    match f.Tast.te with
    | Tast.Tvar v -> (
        match v.Cvar.vkind with
        | Cvar.Funval n -> (
            match v.Cvar.vty with
            | Ctype.Func { Ctype.ret; _ } -> (Nast.Direct n, ret)
            | _ -> (Nast.Direct n, Ctype.int_t))
        | _ ->
            (* call through a function-pointer variable *)
            let ret =
              match v.Cvar.vty with
              | Ctype.Ptr (Ctype.Func { Ctype.ret; _ }) -> ret
              | _ -> Ctype.int_t
            in
            (Nast.Indirect v, ret))
    | Tast.Tderef inner ->
        let p = rv ctx inner in
        let ret =
          match p.Cvar.vty with
          | Ctype.Ptr (Ctype.Func { Ctype.ret; _ }) -> ret
          | Ctype.Func { Ctype.ret; _ } -> ret
          | _ -> Ctype.int_t
        in
        (Nast.Indirect p, ret)
    | _ ->
        let p = rv ctx f in
        let ret =
          match p.Cvar.vty with
          | Ctype.Ptr (Ctype.Func { Ctype.ret; _ }) -> ret
          | _ -> Ctype.int_t
        in
        (Nast.Indirect p, ret)
  in
  (* parameter types for argument-passing conversions, when known *)
  let param_tys =
    match callee with
    | Nast.Direct n -> (
        match Tast.defined_fun ctx.prog n with
        | Some fn ->
            List.map (fun p -> p.Cvar.vty) fn.Tast.fparams
        | None -> (
            match Tast.extern_fun ctx.prog n with
            | Some v -> (
                match v.Cvar.vty with
                | Ctype.Func { Ctype.params; _ } -> List.map snd params
                | _ -> [])
            | None -> []))
    | Nast.Indirect p -> (
        match p.Cvar.vty with
        | Ctype.Ptr (Ctype.Func { Ctype.params; _ })
        | Ctype.Func { Ctype.params; _ } ->
            List.map snd params
        | _ -> [])
  in
  let cargs =
    List.mapi
      (fun i a ->
        let v = rv ctx a in
        match List.nth_opt param_tys i with
        | Some pt when not (Ctype.is_void pt) -> retype ctx v pt loc
        | _ -> v)
      args
  in
  let cret =
    if want_ret || not (Ctype.is_void ret_ty) then
      if Ctype.is_void ret_ty then None else Some (fresh_temp ctx ret_ty)
    else None
  in
  (match callee with
  | Nast.Indirect p ->
      emit ~deref:true ctx (Nast.Call { Nast.cret; cfn = callee; cargs }) loc;
      ignore p
  | Nast.Direct n ->
      emit ctx (Nast.Call { Nast.cret; cfn = callee; cargs }) loc;
      (* allocation and static-result summaries are materialized here so
         that the pseudo-objects exist before solving *)
      (match (Summaries.find n, cret) with
      | Some { Summaries.effects; _ }, Some ret_v ->
          List.iter
            (fun eff ->
              match eff with
              | Summaries.Alloc prefix ->
                  let obj_ty =
                    match hint with
                    | Some t when not (Ctype.is_void t) -> t
                    | _ -> (
                        match ret_v.Cvar.vty with
                        | Ctype.Ptr t when not (Ctype.is_void t) -> t
                        | _ -> Ctype.char_t)
                  in
                  let obj = heap_obj ctx ~prefix ~ty:obj_ty loc in
                  emit ctx (Nast.Addr (ret_v, obj, [])) loc
              | Summaries.Static_result name ->
                  let obj_ty =
                    match ret_v.Cvar.vty with
                    | Ctype.Ptr t when not (Ctype.is_void t) -> t
                    | _ -> Ctype.char_t
                  in
                  let obj = static_obj ctx name obj_ty in
                  emit ctx (Nast.Addr (ret_v, obj, [])) loc
              | _ -> ())
            effects
      | _ -> ()));
  cret

(* ------------------------------------------------------------------ *)
(* Initializers and statements                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_init ctx (base : Cvar.t) (path : Ctype.path) (ty : Ctype.t)
    (i : Tast.tinit) (loc : Srcloc.t) : unit =
  match (i, Ctype.strip_arrays ty) with
  | Tast.Tiexpr { Tast.te = Tast.Tconst_str _; _ }, _
    when Ctype.is_array ty
         && Ctype.is_integer (Ctype.strip_arrays ty) ->
      () (* char buf[] = "..." carries no pointers *)
  | Tast.Tiexpr e, _ ->
      let hint = match ty with Ctype.Ptr t -> Some t | _ -> None in
      let v = rv ?hint ctx e in
      if path = [] then emit ctx (Nast.Copy (base, v, [])) loc
      else begin
        let addr = fresh_temp ctx (Ctype.Ptr ty) in
        emit ctx (Nast.Addr (addr, base, path)) loc;
        emit ctx (Nast.Store (addr, v)) loc
      end
  | Tast.Tilist items, Ctype.Comp c -> (
      match c.Ctype.cfields with
      | None -> ()
      | Some fields ->
          let fields = if c.Ctype.cunion then
              (match fields with [] -> [] | f :: _ -> [ f ])
            else fields
          in
          List.iteri
            (fun idx item ->
              match List.nth_opt fields idx with
              | Some f ->
                  lower_init ctx base (path @ [ f.Ctype.fname ]) f.Ctype.fty
                    item loc
              | None -> ())
            items)
  | Tast.Tilist items, elem_like -> (
      match ty with
      | Ctype.Array (elem, _) ->
          (* all elements share the representative *)
          List.iter (fun item -> lower_init ctx base path elem item loc) items
      | _ -> (
          (* scalar with braces: first item initializes *)
          ignore elem_like;
          match items with
          | item :: _ -> lower_init ctx base path ty item loc
          | [] -> ()))

let rec lower_stmt ctx (ret_var : Cvar.t option) (s : Tast.tstmt) : unit =
  let loc = s.Tast.tsloc in
  match s.Tast.ts with
  | Tast.TSexpr e -> ignore (rv ctx e)
  | Tast.TSdecl ds ->
      List.iter
        (fun (d : Tast.tdecl) ->
          ctx.locals <- d.Tast.dvar :: ctx.locals;
          match d.Tast.dinit with
          | Some i ->
              lower_init ctx d.Tast.dvar [] d.Tast.dvar.Cvar.vty i d.Tast.dloc
          | None -> ())
        ds
  | Tast.TSblock ss -> List.iter (lower_stmt ctx ret_var) ss
  | Tast.TSif (c, t, e) ->
      ignore (rv ctx c);
      lower_stmt ctx ret_var t;
      Option.iter (lower_stmt ctx ret_var) e
  | Tast.TSwhile (c, b) ->
      ignore (rv ctx c);
      lower_stmt ctx ret_var b
  | Tast.TSdo (b, c) ->
      lower_stmt ctx ret_var b;
      ignore (rv ctx c)
  | Tast.TSfor (i, c, st, b) ->
      Option.iter (lower_stmt ctx ret_var) i;
      Option.iter (fun e -> ignore (rv ctx e)) c;
      lower_stmt ctx ret_var b;
      Option.iter (fun e -> ignore (rv ctx e)) st
  | Tast.TSreturn (Some e) -> (
      let hint =
        match ret_var with
        | Some r -> ( match r.Cvar.vty with Ctype.Ptr t -> Some t | _ -> None)
        | None -> None
      in
      let v = rv ?hint ctx e in
      match ret_var with
      | Some r ->
          let v = retype ctx v r.Cvar.vty loc in
          emit ctx (Nast.Copy (r, v, [])) loc
      | None -> ())
  | Tast.TSreturn None -> ()
  | Tast.TSbreak | Tast.TScontinue | Tast.TSgoto _ | Tast.TSnull -> ()
  | Tast.TSswitch (e, b) ->
      ignore (rv ctx e);
      lower_stmt ctx ret_var b
  | Tast.TSlabel (_, b) -> lower_stmt ctx ret_var b

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let lower (prog : Tast.program) : Nast.program =
  let ctx =
    {
      prog;
      out = [];
      stmt_id = 0;
      temp_id = 0;
      heap_id = 0;
      cur_fun = "<init>";
      strlits = Hashtbl.create 32;
      statics = Hashtbl.create 8;
      extra_vars = [];
      locals = [];
    }
  in
  (* global initializers *)
  List.iter
    (fun (d : Tast.tdecl) ->
      match d.Tast.dinit with
      | Some i -> lower_init ctx d.Tast.dvar [] d.Tast.dvar.Cvar.vty i d.Tast.dloc
      | None -> ())
    prog.Tast.pglobals;
  let pinit = List.rev ctx.out in
  ctx.out <- [];
  (* functions *)
  let pfuncs =
    List.map
      (fun (f : Tast.tfun) ->
        ctx.cur_fun <- f.Tast.ffvar.Cvar.vname;
        ctx.out <- [];
        List.iter (fun s -> lower_stmt ctx f.Tast.fret s) f.Tast.fbody;
        let fstmts = List.rev ctx.out in
        ctx.out <- [];
        {
          Nast.fname = f.Tast.ffvar.Cvar.vname;
          ffvar = f.Tast.ffvar;
          fparams = f.Tast.fparams;
          fret = f.Tast.fret;
          fvararg = f.Tast.fvararg;
          fstmts;
        })
      prog.Tast.pfuncs
  in
  let pexterns =
    List.map (fun v -> (v.Cvar.vname, v)) prog.Tast.pexterns
  in
  let pglobals = List.map (fun d -> d.Tast.dvar) prog.Tast.pglobals in
  let fun_vars =
    List.concat_map
      (fun f ->
        (f.Nast.ffvar :: f.Nast.fparams)
        @ Option.to_list f.Nast.fret
        @ Option.to_list f.Nast.fvararg)
      pfuncs
  in
  let local_vars = ctx.locals in
  let pall_vars =
    pglobals @ fun_vars @ local_vars @ List.rev ctx.extra_vars
    @ List.map snd pexterns
  in
  (* canonical positional temp names: identity-free keys built from
     variable names survive mid-function insertions (see {!Tempnames}) *)
  Tempnames.canonicalize
    {
      Nast.pfile = prog.Tast.pfile;
      pglobals;
      pfuncs;
      pexterns;
      pinit;
      pall_vars;
    }

(** One-call convenience pipeline: preprocess, parse, type-check, lower.

    With [~diags], front-end errors are recorded there, both parser and
    type checker recover, and the partial program lowers; without it the
    first front-end error raises {!Cfront.Diag.Error} (historical
    contract). *)
let compile ?layout ?defines ?resolve ?diags ~file src : Nast.program =
  match diags with
  | None ->
      let tu = Parser.parse_string ?layout ?defines ?resolve ~file src in
      let tprog = Typecheck.check ?layout ~file tu in
      lower tprog
  | Some d ->
      let tu = Parser.parse_string ?layout ?defines ?resolve ~diags:d ~file src in
      let tprog = Typecheck.check ?layout ~diags:d ~file tu in
      lower tprog
