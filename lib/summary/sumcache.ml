(** On-disk summary records; see the interface for the contract. *)

type sel = Path of string list | Off of int
type endpoint = string * sel

type record = {
  r_fn : string;
  r_edges : (endpoint * endpoint) list;
  r_copies : (endpoint * endpoint) list;
}

type t = {
  dir : string;
  quarantine_dir : string;
  counters : Core.Metrics.sumcache;
  log : string -> unit;
}

let version_line = "structcast-sum v1"

let mkdir_p path =
  try Unix.mkdir path 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let open_cache ?(log = ignore) dir : t =
  mkdir_p dir;
  let quarantine_dir = Filename.concat dir "quarantine" in
  mkdir_p quarantine_dir;
  (* a crash between fsync and rename leaves a durable temp: discard *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  { dir; quarantine_dir; counters = Core.Metrics.sumcache_create (); log }

let counters t = t.counters
let record_path t key = Filename.concat t.dir (key ^ ".sum")

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

(* One whitespace-free token per string (Store.Codec's escaping); a
   selector is ["P" k f1..fk] or ["O" n], so lines parse left to right
   with no lookahead. *)
let sel_tokens = function
  | Path p ->
      "P" :: string_of_int (List.length p) :: List.map Store.Codec.enc_str p
  | Off o -> [ "O"; string_of_int o ]

let endpoint_tokens ((k, s) : endpoint) =
  Store.Codec.enc_str k :: sel_tokens s

let encode ~(key : string) (r : record) : string =
  let b = Buffer.create 4096 in
  let line toks =
    Buffer.add_string b (String.concat " " toks);
    Buffer.add_char b '\n'
  in
  line [ version_line ];
  line [ "key"; key ];
  line [ "fn"; Store.Codec.enc_str r.r_fn ];
  let pairs label l =
    line [ label; string_of_int (List.length l) ];
    List.iter
      (fun (a, z) -> line (endpoint_tokens a @ endpoint_tokens z))
      l
  in
  pairs "edges" r.r_edges;
  pairs "copies" r.r_copies;
  let payload = Buffer.contents b in
  payload ^ Printf.sprintf "sum %s\n" (Digest.to_hex (Digest.string payload))

exception Bad of string

let decode ~(key : string) (bytes : string) : (record, string) result =
  try
    let n = String.length bytes in
    if n = 0 then raise (Bad "empty record");
    if bytes.[n - 1] <> '\n' then raise (Bad "truncated (no final newline)");
    let i =
      match String.rindex_from_opt bytes (n - 2) '\n' with
      | Some i -> i
      | None -> raise (Bad "truncated")
    in
    let payload = String.sub bytes 0 (i + 1) in
    (match String.split_on_char ' ' (String.sub bytes (i + 1) (n - i - 2)) with
    | [ "sum"; hex ] when String.length hex = 32 ->
        if Digest.to_hex (Digest.string payload) <> hex then
          raise (Bad "checksum mismatch")
    | _ -> raise (Bad "missing checksum line"));
    let lines = Array.of_list (String.split_on_char '\n' payload) in
    let nlines = Array.length lines - 1 in
    let pos = ref 0 in
    let next () =
      if !pos >= nlines then raise (Bad "unexpected end of record");
      let l = lines.(!pos) in
      incr pos;
      l
    in
    let int s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> raise (Bad ("bad integer " ^ s))
    in
    let dec s =
      match Store.Codec.dec_str_opt s with
      | Some v -> v
      | None -> raise (Bad "bad percent escape")
    in
    if next () <> version_line then raise (Bad "unsupported format version");
    (match String.split_on_char ' ' (next ()) with
    | [ "key"; k ] when k = key -> ()
    | [ "key"; _ ] -> raise (Bad "key does not match its content")
    | _ -> raise (Bad "expected key line"));
    let fn =
      match String.split_on_char ' ' (next ()) with
      | [ "fn"; f ] -> dec f
      | _ -> raise (Bad "expected fn line")
    in
    let sel = function
      | "P" :: k :: rest ->
          let k = int k in
          if k < 0 || List.length rest < k then raise (Bad "bad path arity");
          let fields = List.filteri (fun i _ -> i < k) rest in
          (Path (List.map dec fields), List.filteri (fun i _ -> i >= k) rest)
      | "O" :: o :: rest -> (Off (int o), rest)
      | _ -> raise (Bad "malformed selector")
    in
    let endpoint = function
      | vk :: rest ->
          let s, rest = sel rest in
          ((dec vk, s), rest)
      | [] -> raise (Bad "malformed endpoint")
    in
    let pair_section label =
      let count =
        match String.split_on_char ' ' (next ()) with
        | [ l; c ] when l = label -> int c
        | _ -> raise (Bad ("expected " ^ label ^ " line"))
      in
      if count < 0 then raise (Bad (label ^ " count negative"));
      List.init count (fun _ ->
          let toks = String.split_on_char ' ' (next ()) in
          let a, rest = endpoint toks in
          let z, rest = endpoint rest in
          if rest <> [] then raise (Bad "trailing tokens on pair line");
          (a, z))
    in
    let r_edges = pair_section "edges" in
    let r_copies = pair_section "copies" in
    Ok { r_fn = fn; r_edges; r_copies }
  with Bad why -> Error why

(* ------------------------------------------------------------------ *)
(* Load / store                                                        *)
(* ------------------------------------------------------------------ *)

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantine t key ~why =
  (try
     Sys.rename (record_path t key)
       (Filename.concat t.quarantine_dir (key ^ ".sum"))
   with Sys_error _ -> ());
  t.counters.Core.Metrics.sum_corrupt <-
    t.counters.Core.Metrics.sum_corrupt + 1;
  t.log (Printf.sprintf "quarantined summary record %s: %s" key why)

let get t ~key : record option =
  let path = record_path t key in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error why ->
        t.log (Printf.sprintf "unreadable summary record %s: %s" key why);
        None
    | bytes -> (
        match decode ~key bytes with
        | Ok r -> Some r
        | Error why ->
            quarantine t key ~why;
            None)

let write_fd fd (data : string) =
  let n = String.length data in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd data off (n - off))
  in
  go 0

let put t ~key (r : record) : unit =
  let dest = record_path t key in
  let temp = dest ^ ".tmp" in
  match
    let data = encode ~key r in
    let fd =
      Unix.openfile temp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_fd fd data;
        Unix.fsync fd);
    Sys.rename temp dest
  with
  | () ->
      t.counters.Core.Metrics.sum_written <-
        t.counters.Core.Metrics.sum_written + 1
  | exception (Sys_error _ | Unix.Unix_error _) ->
      t.counters.Core.Metrics.sum_write_failures <-
        t.counters.Core.Metrics.sum_write_failures + 1;
      t.log (Printf.sprintf "summary record write failed for %s" key)
