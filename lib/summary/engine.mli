(** The summary engine: bottom-up per-function summaries, cached in a
    {!Sumcache} and composed over the call-graph SCC-DAG.

    {b How a solve works.} The core [`Summary] schedule ({!Core.Solver})
    condenses the direct-call graph and solves it callees-first. This
    module supplies the two hooks that make the schedule incremental
    across processes:

    - {e probe} (before an SCC is solved): look the function's
      {!Sumdigest} key up in the cache; on a hit, inject the record's
      facts and subset constraints ({!Core.Solver.inject_edge} /
      [inject_copy]) and skip the function's statements in the
      bottom-up pass.
    - {e commit} (after the SCC stabilized, for functions that missed):
      solve the SCC's downward closure {e in isolation} — its member
      and transitive-callee bodies, no global initializers, no callers
      — and record each missed member's attributed constraints from
      that pure sub-fixpoint.

    {b Why this is sound.} The rules are monotone in the statement set:
    any fact derived from a subset of a program's statements holds in
    the least fixpoint of every program containing that subset. A
    record's constraints were derived from exactly the closure bodies
    its key digests, so under a key match they hold in the request's
    fixpoint, whatever changed elsewhere. Strategy cell normalization
    is a pure function of declared types, so recorded cells mean the
    same storage in any program that binds their variable keys. The
    closing whole-program pass of the [`Summary] schedule then makes
    the result {e exact}: a stale cache can cost work, never precision,
    and the stats-free report stays byte-identical to every other
    engine's. Records are refused (not written) when the sub-solve
    degraded under budget or a cell will not rebind identity-free.

    {b Invalidation.} Keys compose callee keys, so an edit to one body
    changes exactly the keys of its function and its transitive direct
    callers ({!Callgraph.callers_closure}) — the dependent chain — and
    the next run recomputes precisely those summaries, hitting on the
    rest. *)

open Cfront
open Norm
open Core

val solve :
  cache:Sumcache.t ->
  config:Store.Codec.config ->
  layout:Layout.config ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  Solver.t
(** One hooked summary solve to the exact whole-program fixpoint.
    [config.engine] is forced to [`Summary]; its line is part of every
    record key. Probe/commit traffic lands in [Sumcache.counters]. *)

val run :
  cache:Sumcache.t ->
  config:Store.Codec.config ->
  layout:Layout.config ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  Analysis.result
(** {!solve} wrapped with timing and metrics, shaped like
    {!Core.Analysis.run}. *)

val serve :
  store:Store.t ->
  cache:Sumcache.t ->
  want:[ `Json | `Solver ] ->
  diags:Diag.payload list ->
  name:string ->
  strategy_id:string ->
  layout:Layout.config ->
  layout_id:string ->
  ?arith:Store.Codec.arith ->
  budget:Budget.limits ->
  Nast.program ->
  Store.served
(** {!Store.serve} with the cold solve routed through {!solve}: an
    exact snapshot repeat or additive ancestor still short-circuits at
    the whole-program level; anything colder consults the per-function
    summary cache, so a single-function edit recomputes only its
    dependent chain. *)

val with_counters : Sumcache.t -> string -> string
(** Splice [,"summary_cache":{...}] into a report JSON object —
    observability, never part of the report's determinism contract
    (same shape as {!Store.with_counters}). *)
