(** Direct-call-graph condensation; see the interface. *)

open Norm

type t = {
  funcs : Nast.func array;
  scc_of_fn : (string, int) Hashtbl.t;
  sccs : Nast.func list array;  (** bottom-up order *)
  callees : int list array;  (** per SCC, callee SCC indices, sorted *)
}

let build (prog : Nast.program) : t =
  let funcs = Array.of_list prog.Nast.pfuncs in
  let index = Hashtbl.create 32 in
  Array.iteri
    (fun i (f : Nast.func) -> Hashtbl.replace index f.Nast.fname i)
    funcs;
  let succs i =
    List.filter_map
      (fun n -> Hashtbl.find_opt index n)
      (Boundary.direct_callees funcs.(i))
  in
  let roots = List.init (Array.length funcs) Fun.id in
  (* Tarjan yields the condensation callers-first; reverse for the
     bottom-up schedule the summaries compose along *)
  let bottom_up = List.rev (Core.Tarjan.sccs ~roots ~succs) in
  let sccs =
    Array.of_list
      (List.map (fun scc -> List.map (fun i -> funcs.(i)) scc) bottom_up)
  in
  let scc_of_fn = Hashtbl.create 32 in
  Array.iteri
    (fun si members ->
      List.iter
        (fun (f : Nast.func) -> Hashtbl.replace scc_of_fn f.Nast.fname si)
        members)
    sccs;
  let callees =
    Array.map
      (fun members ->
        let si =
          match members with
          | (f : Nast.func) :: _ -> Hashtbl.find scc_of_fn f.Nast.fname
          | [] -> assert false
        in
        List.sort_uniq compare
          (List.concat_map
             (fun (f : Nast.func) ->
               List.filter_map
                 (fun n ->
                   match Hashtbl.find_opt scc_of_fn n with
                   | Some sj when sj <> si -> Some sj
                   | _ -> None)
                 (Boundary.direct_callees f))
             members))
      sccs
  in
  { funcs; scc_of_fn; sccs; callees }

let sccs_bottom_up t = Array.to_list t.sccs
let scc_of t name = Hashtbl.find_opt t.scc_of_fn name
let scc_members t si = t.sccs.(si)
let callee_sccs t si = t.callees.(si)

(* program order = order in [funcs] *)
let in_program_order t (names : (string, unit) Hashtbl.t) : Nast.func list =
  Array.to_list t.funcs
  |> List.filter (fun (f : Nast.func) -> Hashtbl.mem names f.Nast.fname)

let closure_funcs t si : Nast.func list =
  let seen = Hashtbl.create 16 in
  let names = Hashtbl.create 16 in
  let rec visit sj =
    if not (Hashtbl.mem seen sj) then begin
      Hashtbl.replace seen sj ();
      List.iter
        (fun (f : Nast.func) -> Hashtbl.replace names f.Nast.fname ())
        t.sccs.(sj);
      List.iter visit t.callees.(sj)
    end
  in
  visit si;
  in_program_order t names

let callers_closure t (changed : string list) : string list =
  (* reverse edges over the condensation, then flood from the changed
     functions' SCCs upward *)
  let n = Array.length t.sccs in
  let rev = Array.make n [] in
  Array.iteri
    (fun si callees -> List.iter (fun sj -> rev.(sj) <- si :: rev.(sj)) callees)
    t.callees;
  let seen = Hashtbl.create 16 in
  let rec visit sj =
    if not (Hashtbl.mem seen sj) then begin
      Hashtbl.replace seen sj ();
      List.iter visit rev.(sj)
    end
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.scc_of_fn name with
      | Some si -> visit si
      | None -> ())
    changed;
  List.sort_uniq compare
    (Hashtbl.fold
       (fun si () acc ->
         List.map (fun (f : Nast.func) -> f.Nast.fname) t.sccs.(si) @ acc)
       seen [])
