(** The direct-call graph of a normalized program, condensed into its
    SCC-DAG with {!Core.Tarjan}. The summary engine keys and solves
    per SCC: mutually recursive functions share one summary boundary,
    and a function's summary depends on exactly its SCC's downward
    closure. *)

open Norm

type t

val build : Nast.program -> t
(** Build the condensation. Edges follow {!Boundary.direct_callees}
    restricted to defined functions; indirect calls contribute no edges
    (their targets are facts, not syntax — the summary engine accounts
    for them through monotonicity, not the graph). *)

val sccs_bottom_up : t -> Nast.func list list
(** The SCCs in bottom-up (callees-first) topological order — the order
    summaries are computed in. Deterministic for a given program. *)

val scc_of : t -> string -> int option
(** Index of the SCC containing the named function ([None] for names
    not defined in the program). Indices match positions in
    {!sccs_bottom_up}. *)

val scc_members : t -> int -> Nast.func list
(** Member functions of one SCC, in program order. *)

val callee_sccs : t -> int -> int list
(** SCC indices this SCC calls into (excluding itself), sorted. *)

val closure_funcs : t -> int -> Nast.func list
(** The SCC's downward closure: its members plus every function
    transitively reachable over direct calls, in program order. This is
    the sub-program a summary is a pure function of. *)

val callers_closure : t -> string list -> string list
(** Every function whose summary depends on one of the named functions:
    the names themselves plus all transitive direct callers, sorted.
    This is the exact invalidation set for an edit to those bodies. *)
