(** Identity-free summary keys, composed over the SCC-DAG.

    A function's summary records constraints derived from its SCC's
    downward closure alone, so the key must change exactly when that
    closure (or the analysis configuration) changes:

    [key(SCC) = digest(config ++ sorted member body digests
                       ++ sorted external callee SCC keys)]

    The recursion bottoms out at leaf SCCs; editing one body changes
    its own key and — through the callee-key operand — the key of every
    transitive caller, and nothing else. Body digests build on
    {!Incr.Progdiff}'s statement and interface keys, which never
    mention statement ids, variable ids, or source locations, so
    recompiling unchanged source reproduces the keys byte-for-byte
    (the {!Norm.Tempnames} canonicalization keeps lowering temporaries
    stable under edits elsewhere in the function). *)

open Norm

val body_digest : iface:(string -> string) -> Nast.func -> string
(** Digest of one function's interface key plus its statement keys in
    body order ([iface] from {!Incr.Progdiff.iface_of_program}). *)

type keys

val keys : config_line:string -> Nast.program -> Callgraph.t -> keys
(** Compute every SCC's key bottom-up. [config_line] must pin strategy,
    engine, layout, arithmetic mode, and budget — anything that changes
    what a summary records. *)

val key_of : keys -> string -> string option
(** The summary key of the named function: its SCC's key refined by the
    function name (SCC members share a closure but carry distinct
    records); [None] for functions not defined in the program. *)
