(** Summary keys; see the interface for the recursion. *)

open Norm

let body_digest ~(iface : string -> string) (f : Nast.func) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Incr.Progdiff.interface_key f);
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b
        (Incr.Progdiff.stmt_key ~iface ~scope:f.Nast.fname s);
      Buffer.add_char b '\n')
    f.Nast.fstmts;
  Digest.to_hex (Digest.string (Buffer.contents b))

type keys = (string, string) Hashtbl.t

let keys ~(config_line : string) (prog : Nast.program) (cg : Callgraph.t) :
    keys =
  let iface = Incr.Progdiff.iface_of_program prog in
  let scc_key : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let by_fn : keys = Hashtbl.create 32 in
  (* bottom-up order: every callee SCC's key exists when needed *)
  List.iteri
    (fun si members ->
      let bodies =
        List.sort compare
          (List.map (fun f -> body_digest ~iface f) members)
      in
      let callee_keys =
        List.sort compare
          (List.map
             (fun sj -> Hashtbl.find scc_key sj)
             (Callgraph.callee_sccs cg si))
      in
      let k =
        Digest.to_hex
          (Digest.string
             (String.concat "\n"
                ((config_line :: bodies) @ ("--" :: callee_keys))))
      in
      Hashtbl.replace scc_key si k;
      (* members share the SCC key but carry distinct records: the
         cache key is the SCC key refined by the function name *)
      List.iter
        (fun (f : Nast.func) ->
          Hashtbl.replace by_fn f.Nast.fname
            (Digest.to_hex (Digest.string (k ^ "\n" ^ f.Nast.fname))))
        members)
    (Callgraph.sccs_bottom_up cg);
  by_fn

let key_of (t : keys) (name : string) : string option =
  Hashtbl.find_opt t name
