(** The hooked summary solve; see the interface for the soundness
    argument (monotonicity over statement subsets) and the serve
    composition. *)

open Cfront
open Norm
open Core

(* ------------------------------------------------------------------ *)
(* Identity-free cell binding                                          *)
(* ------------------------------------------------------------------ *)

(* Records travel as (var key, selector) endpoints. Binding refuses
   shadowed keys outright — on either side — because the "first holder"
   of a shadowed key is an accident of variable generation order that an
   edit elsewhere could flip, and a record must mean the same storage in
   every program whose key matches. *)
type binder = {
  first : (string, Cvar.t) Hashtbl.t;
  shadowed : (string, unit) Hashtbl.t;
}

let binder_of (prog : Nast.program) : binder =
  let first = Hashtbl.create 256 in
  let shadowed = Hashtbl.create 16 in
  List.iter
    (fun (v : Cvar.t) ->
      let k = Incr.Progdiff.var_key v in
      if Hashtbl.mem first k then Hashtbl.replace shadowed k ()
      else Hashtbl.add first k v)
    prog.Nast.pall_vars;
  { first; shadowed }

let sel_of_cell : Cell.sel -> Sumcache.sel = function
  | Cell.Path p -> Sumcache.Path p
  | Cell.Off o -> Sumcache.Off o

let cell_sel : Sumcache.sel -> Cell.sel = function
  | Sumcache.Path p -> Cell.Path p
  | Sumcache.Off o -> Cell.Off o

(* record side: cell id (from a sub-solver's attribution table) →
   endpoint, [None] when the cell would not rebind faithfully *)
let endpoint_of (b : binder) ~(refuse : Cvar.t) (cid : int) :
    Sumcache.endpoint option =
  let c = Cell.of_id cid in
  let v = c.Cell.base in
  if Cvar.equal v refuse then None
  else
    let k = Incr.Progdiff.var_key v in
    if Hashtbl.mem b.shadowed k then None
    else
      match Hashtbl.find_opt b.first k with
      | Some v0 when Cvar.equal v0 v -> Some (k, sel_of_cell c.Cell.sel)
      | _ -> None

(* injection side: endpoint → cell over the request program's variables *)
let cell_of (b : binder) ((k, s) : Sumcache.endpoint) : Cell.t option =
  if Hashtbl.mem b.shadowed k then None
  else
    match Hashtbl.find_opt b.first k with
    | Some v -> Some (Cell.v v (cell_sel s))
    | None -> None

(* ------------------------------------------------------------------ *)
(* The hooked solve                                                    *)
(* ------------------------------------------------------------------ *)

let solve ~(cache : Sumcache.t) ~(config : Store.Codec.config)
    ~(layout : Layout.config) ~(strategy : (module Strategy.S))
    (prog : Nast.program) : Solver.t =
  let config = { config with Store.Codec.engine = `Summary } in
  let config_line = Store.Codec.config_line config in
  let cg = Callgraph.build prog in
  let keys = Sumdigest.keys ~config_line prog cg in
  let b = binder_of prog in
  let c = Sumcache.counters cache in
  let t =
    Solver.create ~layout ~arith:config.Store.Codec.arith
      ~budget:config.Store.Codec.budget ~engine:`Summary ~track:true
      ~strategy prog
  in
  (* One isolated sub-solve per SCC, shared by its members' commits: the
     SCC's downward closure with no global initializers and no callers,
     so every attributed constraint is a pure function of what the key
     digests. Memoized — members of one SCC share the closure. *)
  let sub_results : (int, Solver.t) Hashtbl.t = Hashtbl.create 16 in
  let sub_solve (si : int) : Solver.t =
    match Hashtbl.find_opt sub_results si with
    | Some s -> s
    | None ->
        let sub_prog =
          {
            prog with
            Nast.pfuncs = Callgraph.closure_funcs cg si;
            pinit = [];
          }
        in
        let s =
          Solver.run ~layout ~arith:config.Store.Codec.arith
            ~budget:config.Store.Codec.budget ~engine:`Delta ~track:true
            ~strategy sub_prog
        in
        Hashtbl.replace sub_results si s;
        s
  in
  let probe (f : Nast.func) : bool =
    match Sumdigest.key_of keys f.Nast.fname with
    | None -> false
    | Some key -> (
        match Sumcache.get cache ~key with
        | None ->
            c.Metrics.sum_misses <- c.Metrics.sum_misses + 1;
            false
        | Some r when r.Sumcache.r_fn <> f.Nast.fname ->
            (* a digest collision would land here; treat as a miss *)
            c.Metrics.sum_misses <- c.Metrics.sum_misses + 1;
            false
        | Some r -> (
            (* resolve every endpoint before injecting anything: a
               record is used whole or not at all *)
            let bind_pairs l =
              List.fold_left
                (fun acc (a, z) ->
                  match (acc, cell_of b a, cell_of b z) with
                  | Some acc, Some ca, Some cz -> Some ((ca, cz) :: acc)
                  | _ -> None)
                (Some []) l
            in
            match
              (bind_pairs r.Sumcache.r_edges, bind_pairs r.Sumcache.r_copies)
            with
            | Some edges, Some copies ->
                List.iter (fun (ca, cz) -> Solver.inject_edge t ca cz) edges;
                List.iter
                  (fun (dst, src) -> Solver.inject_copy t ~dst ~src)
                  copies;
                c.Metrics.sum_facts_injected <-
                  c.Metrics.sum_facts_injected + List.length edges;
                c.Metrics.sum_copies_injected <-
                  c.Metrics.sum_copies_injected + List.length copies;
                c.Metrics.sum_hits <- c.Metrics.sum_hits + 1;
                true
            | _ ->
                c.Metrics.sum_unmapped <- c.Metrics.sum_unmapped + 1;
                false))
  in
  let commit (f : Nast.func) : unit =
    match
      (Sumdigest.key_of keys f.Nast.fname, Callgraph.scc_of cg f.Nast.fname)
    with
    | Some key, Some si -> (
        let sub = sub_solve si in
        (* a degraded sub-fixpoint over-approximates its least fixpoint;
           its constraints may not hold in the whole program's — refuse
           the record rather than poison the cache *)
        if Solver.degradations sub <> [] then ()
        else
          let pairs_of tbl =
            List.concat_map
              (fun (s : Nast.stmt) ->
                match Solver.Itbl.find_opt tbl s.Nast.id with
                | Some l -> !l
                | None -> [])
              f.Nast.fstmts
          in
          let encode_pairs l =
            List.fold_left
              (fun acc (a, z) ->
                match
                  ( acc,
                    endpoint_of b ~refuse:sub.Solver.unknown_obj a,
                    endpoint_of b ~refuse:sub.Solver.unknown_obj z )
                with
                | Some acc, Some ea, Some ez -> Some ((ea, ez) :: acc)
                | _ -> None)
              (Some []) l
            |> Option.map (List.sort_uniq compare)
          in
          (* stmt_copies holds [(src, dst)] install pairs ([sid ⊆ did]);
             records store copies as [(dst, src)] *)
          let copies =
            List.map (fun (s, d) -> (d, s)) (pairs_of sub.Solver.stmt_copies)
          in
          match
            (encode_pairs (pairs_of sub.Solver.stmt_edges), encode_pairs copies)
          with
          | Some r_edges, Some r_copies ->
              Sumcache.put cache ~key
                { Sumcache.r_fn = f.Nast.fname; r_edges; r_copies }
          | _ -> c.Metrics.sum_unmapped <- c.Metrics.sum_unmapped + 1)
    | _ -> ()
  in
  t.Solver.summary_probe <- Some probe;
  t.Solver.summary_commit <- Some commit;
  Solver.solve t;
  t

let run ~cache ~config ~layout ~strategy (prog : Nast.program) :
    Analysis.result =
  let t0 = Unix_time.now () in
  let solver = solve ~cache ~config ~layout ~strategy prog in
  {
    Analysis.solver;
    metrics = Metrics.summarize solver;
    time_s = Unix_time.now () -. t0;
    degraded = Solver.degradations solver;
    diags = [];
  }

(* ------------------------------------------------------------------ *)
(* Store composition                                                   *)
(* ------------------------------------------------------------------ *)

let serve ~store ~cache ~want ~diags ~name ~strategy_id ~layout ~layout_id
    ?(arith = `Spread) ~budget (prog : Nast.program) : Store.served =
  let strategy =
    match Analysis.strategy_of_id strategy_id with
    | Some s -> s
    | None -> invalid_arg ("summary: unknown strategy " ^ strategy_id)
  in
  let config =
    { Store.Codec.strategy_id; engine = `Summary; layout_id; arith; budget }
  in
  Store.serve store ~want ~diags ~name ~strategy_id ~engine:`Summary ~layout
    ~layout_id ~arith ~budget
    ~cold:(fun () -> solve ~cache ~config ~layout ~strategy prog)
    prog

let with_counters (cache : Sumcache.t) (json : string) : string =
  let n = String.length json in
  if n >= 2 && json.[n - 1] = '}' then
    String.sub json 0 (n - 1)
    ^ ",\"summary_cache\":"
    ^ Metrics.sumcache_json (Sumcache.counters cache)
    ^ "}"
  else json
