(** On-disk per-function summary records, content-addressed by
    {!Sumdigest} keys.

    A record is the caller-independent constraint set of one function —
    the direct points-to facts and subset (copy) constraints its own
    statements derived in the least fixpoint of its SCC's downward
    closure. Endpoints are identity-free [(var key, selector)] pairs,
    so records rebind across processes and recompiles.

    Records live as [DIR/<key>.sum], written temp + fsync + rename (a
    crash never leaves a half-visible record); a record that fails its
    checksum, version, or key check is moved to [DIR/quarantine/] —
    never deleted — and reported as a miss. Like the snapshot store,
    the cache is an accelerator with a degrade-to-recompute contract:
    a corrupt or missing record costs a recompute, never an answer. *)

type sel = Path of string list | Off of int
(** Mirror of {!Core.Cell.sel} in identity-free form. *)

type endpoint = string * sel
(** ({!Incr.Progdiff.var_key}, selector). *)

type record = {
  r_fn : string;  (** function name, a consistency check on load *)
  r_edges : (endpoint * endpoint) list;
      (** direct points-to facts [(pointer cell, target cell)] *)
  r_copies : (endpoint * endpoint) list;
      (** subset constraints [(dst, src)]: pts(src) ⊆ pts(dst) *)
}

type t

val open_cache : ?log:(string -> unit) -> string -> t
(** Open (creating if needed) a record directory. [log] receives
    operational warnings (quarantines, contained write failures) and
    must never feed report output. *)

val counters : t -> Core.Metrics.sumcache
(** Shared counter block: the cache bumps written / write-failure /
    corrupt, the engine layers hit / miss / unmapped / injection counts
    onto the same record. *)

val get : t -> key:string -> record option
(** Load and verify one record; a corrupt record is quarantined and
    reported as [None]. Does not bump hit/miss counters — the engine
    owns the notion of a hit. *)

val put : t -> key:string -> record -> unit
(** Store one record atomically. Failures are contained and counted. *)
