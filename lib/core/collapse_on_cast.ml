(** The "Collapse on Cast" instance (paper Section 4.3.2): fields are
    distinguished while an object is accessed at its declared type; an
    access at any other type conservatively touches all fields from the
    access point onward. Portable. *)

open Cfront

let name = "Collapse on Cast"

let id = "collapse-on-cast"

let portable = true

let graph_resolve = false

let normalize _ctx (s : Cvar.t) (alpha : Ctype.path) : Cell.t =
  Cell.v s (Cell.Path (Strategy.normalize_path s.Cvar.vty alpha))

let target_path (c : Cell.t) : Ctype.path =
  match c.Cell.sel with
  | Cell.Path p -> p
  | Cell.Off _ -> [] (* foreign selector: treat as the whole object *)

(** Core of [lookup]; also used (uncounted) by [resolve]. Returns the cells
    and whether the declared type matched an enclosing sub-object. *)
let lookup_i (tau : Ctype.t) (alpha : Ctype.path) (target : Cell.t) :
    Cell.t list * bool =
  let t = target.Cell.base in
  let tty = t.Cvar.vty in
  let beta = target_path target in
  let mk p = Cell.v t (Cell.Path (Strategy.normalize_path tty p)) in
  let candidates = Ctype.enclosing_candidates tty beta in
  (* arrays are transparent: a pointer to an array designates its single
     representative element, so "array of τ" matches τ *)
  let tau_s = Ctype.strip_arrays tau in
  let matching =
    List.find_opt
      (fun delta ->
        match Ctype.type_at_path tty delta with
        | dty -> Ctype.equal (Ctype.strip_arrays dty) tau_s
        | exception Diag.Error _ -> false)
      candidates
  in
  match matching with
  | Some delta -> ([ mk (delta @ alpha) ], true)
  | None ->
      let following = Ctype.following_leaves tty beta in
      (Strategy.dedup_cells (mk beta :: List.map mk following), false)

let lookup ctx tau alpha target : Cell.t list =
  let cells, matched = lookup_i tau alpha target in
  Actx.count_lookup ctx
    ~structure:(Strategy.involves_struct tau target)
    ~mismatch:(not matched);
  cells

let resolve ctx _graph (dst : Cell.t) (src : Cell.t) (tau : Ctype.t) :
    (Cell.t * Cell.t) list =
  let pairs, matched =
    Actx.inside_resolve ctx (fun () ->
        let deltas = Ctype.leaf_paths tau in
        let matched = ref true in
        let pairs =
          List.concat_map
            (fun delta ->
              let ds, m1 = lookup_i tau delta dst in
              let ss, m2 = lookup_i tau delta src in
              if not (m1 && m2) then matched := false;
              List.concat_map (fun d -> List.map (fun s -> (d, s)) ss) ds)
            deltas
        in
        (Strategy.dedup_pairs pairs, !matched))
  in
  Actx.count_resolve ctx
    ~structure:
      (Strategy.involves_struct tau dst || Strategy.involves_struct tau src)
    ~mismatch:(not matched);
  pairs

let all_cells _ctx (obj : Cvar.t) : Cell.t list =
  List.map
    (fun p -> Cell.v obj (Cell.Path p))
    (Ctype.leaf_paths obj.Cvar.vty)

let in_array _ctx (c : Cell.t) : bool =
  let ty = c.Cell.base.Cvar.vty in
  Ctype.is_array ty
  ||
  match c.Cell.sel with
  | Cell.Path p -> Ctype.outermost_array_prefix ty p <> None
  | Cell.Off _ -> false

let expand_for_metrics _ctx (c : Cell.t) : Cell.t list = [ c ]
