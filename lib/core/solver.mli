(** The fixpoint solver: applies the paper's inference rules 1–5
    (Figure 2) over a normalized program until no new points-to facts
    appear.

    Generic in the strategy; interprocedural behaviour is
    context-insensitive, with indirect callees discovered from function
    pointers' points-to sets as the fixpoint grows. Library calls use
    {!Norm.Summaries}.

    Five engines produce identical fixpoints:

    - [`Delta] (default) — difference propagation with online cycle
      elimination: statement visits consume only the facts added since
      their last visit (cursors into the {!Idset} append logs), resolves
      install persistent copy edges, and a cell-level priority worklist
      (pseudo-topological order of the copy graph) pushes each fact
      across each edge once. Subset cycles are detected lazily (a drain
      that moves facts but adds none, onto an already-equal set,
      triggers a bounded DFS) and their cells {!Graph.unify}'d to share
      one points-to set.
    - [`Delta_nocycle] — difference propagation with cycle elimination
      off: the ablation baseline for benchmarks and differential tests.
    - [`Naive] — the reference worklist that re-reads full sets on every
      visit; retained as the differential-testing oracle.
    - [`Delta_par n] — the delta engine with the copy-edge drain run on
      [n] OCaml domains: the copy graph's SCC condensation is
      partitioned into topologically contiguous regions, regions drain
      concurrently with per-region worklists and per-edge cursors, and
      cross-region deltas are buffered into per-region outboxes that a
      sequential frontier gap routes to the consuming region. All
      unification, binding creation, and budget charging happen in the
      gaps, so rounds never mutate shared structure. [`Delta_par 1] and
      schedules that never reach the width threshold degrade to the
      sequential drain. The fixpoint — and every stats-free report
      field — is byte-identical to [`Delta] (the rules are monotone and
      confluent, so the least fixpoint is schedule-independent); the
      profiling counters differ.
    - [`Summary] — the delta rules on a bottom-up modular schedule: the
      direct-call graph is condensed into an SCC-DAG ({!Tarjan}) and
      solved callees-first, each SCC to fixpoint with the
      function-pointer-induced callee set iterated at the SCC boundary
      until it stabilizes, then a closing whole-program pass joins the
      global initializers and drives the fixpoint global. Per-function
      summary hooks ([summary_probe]/[summary_commit]) let
      [lib/summary] inject cached constraints and extract fresh ones at
      the caller-independent point; the closing pass makes the result
      exact regardless of what the cache held. Byte-identical stats-free
      reports, like [`Delta_par].

    Resilience: every worklist step is charged against a {!Budget.t}.
    When a budget trips the solver degrades gracefully — the offending
    object(s) are collapsed to one cell each (the Collapse-Always
    treatment applied per object, their edges merged) and the fixpoint is
    re-established over the coarser cell space, so the result is always a
    sound over-approximation. A collapse also discards in-flight deltas
    (cursors and copy edges name pre-collapse cells) and dissolves the
    union-find classes ({!Graph.unshare}); the re-enqueued statements
    re-derive the constraints over the representative cells.
    Degradations are recorded as {!Budget.event}s. *)

open Cfront
open Norm

module Itbl : Hashtbl.S with type key = int

type engine =
  [ `Delta | `Delta_nocycle | `Naive | `Delta_par of int | `Summary ]
(** [`Delta_par n] drains copy edges on [n] domains; [n <= 1] behaves
    exactly like [`Delta]. [`Summary] runs the delta rules on the
    bottom-up per-function schedule. *)

type t = {
  ctx : Actx.t;
  graph : Graph.t;
  strategy : (module Strategy.S);
      (** the degradation-aware wrapper; redirects cells of collapsed
          objects to their representative *)
  base_strategy : (module Strategy.S);
      (** the instance [create] was given, unwrapped *)
  budget : Budget.t;
  collapsed : unit Cvar.Tbl.t;  (** objects degraded to a single cell *)
  collapse_all : bool ref;
      (** set when a step/time/total budget trips: every object is
          treated as collapsed from then on *)
  engine : engine;
  mutable prog : Nast.program;
      (** mutable for incremental re-analysis: {!set_program} swaps in
          the aligned edited program between {!resume}s *)
  funcs : (string, Nast.func) Hashtbl.t;
  queue : Nast.stmt Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  subscribers : Nast.stmt list ref Cvar.Tbl.t;
  stmt_subs : Cvar.Set.t ref Itbl.t;
  cursors : int Itbl.t Itbl.t;
      (** delta: stmt id → (cell id → facts already consumed) *)
  dirty : unit Itbl.t;
      (** delta: stmts whose cursors reset at their next visit *)
  pointer_subs : Nast.stmt list ref Itbl.t;
      (** delta: class representative id → statements consuming that
          class's set via cursor; re-keyed to the survivor on
          unification *)
  cell_subbed : (int * int, unit) Hashtbl.t;
  copy_out : (int * int ref) list ref Itbl.t;
      (** delta: class id → (dst cell id, copy cursor); edges move to
          the surviving class on unification *)
  copy_mem : (int * int, unit) Hashtbl.t;
  copy_srcs : int list ref;
      (** [copy_out] keys in creation order — deterministic DFS roots
          for the pseudo-topological drain order *)
  cell_pq : Pq.t;
      (** cells with unpushed facts, drained in pseudo-topological
          order of the copy graph *)
  in_cell_wl : unit Itbl.t;
  order : int Itbl.t;
      (** class id → pseudo-topological rank (reverse postorder);
          unranked cells drain last *)
  mutable order_edges : int;
      (** [copy_mem] size when [order] was last recomputed *)
  lcd_done : (int * int, unit) Hashtbl.t;
      (** (src, dst) class pairs that already triggered a cycle search *)
  mutable delta_gen : int;
      (** generation counter bumped by {!reset_deltas}; the parallel
          engine aborts an in-flight drain phase when a gap-side
          degradation invalidated the partition it was built on *)
  mutable rounds : int;  (** statement visits *)
  mutable facts_consumed : int;
      (** facts read by rule visits plus facts pushed along copy edges *)
  mutable delta_facts : int;
      (** facts rule visits actually iterated (delta suffixes) *)
  mutable full_facts : int;
      (** set sizes those visits would have re-read naively *)
  mutable cycles_found : int;
      (** subset cycles collapsed by lazy cycle detection *)
  mutable cells_unified : int;
      (** cells folded into another class's representative *)
  mutable wasted_props : int;
      (** propagations that produced nothing new: statement visits that
          consumed facts but derived no edge, and copy-edge drains that
          moved facts but added none *)
  mutable par_frontier_rounds : int;
      (** [`Delta_par]: parallel drain rounds executed — each runs the
          active regions concurrently, then joins at a sequential
          frontier gap *)
  mutable par_steals : int;
      (** [`Delta_par]: region claims by a domain other than the
          region's home domain (cross-domain load imbalance) *)
  arith_mode : [ `Spread | `Copy | `Stride | `Unknown ];
      (** How pointer arithmetic is modelled:
          [`Spread] — the paper's Assumption-1 rule (default);
          [`Stride] — Wilson–Lam array refinement;
          [`Unknown] — pessimistic corrupted-pointer marker;
          [`Copy] — optimistic ablation. *)
  unknown_obj : Cvar.t;
      (** the distinguished target of [`Unknown]-mode arithmetic *)
  mutable unknown_externs : string list;
      (** called external functions with neither a body nor a summary *)
  track : bool;
      (** record per-statement edge support so {!Incr} can retract the
          facts a removed statement was the last to derive *)
  mutable cur_stmt : int;
      (** id of the statement being processed, [-1] between visits *)
  stmt_edges : (int * int) list ref Itbl.t;
      (** stmt id → direct (src, target) cell-id edges it derived *)
  edge_stmt_mem : (int * int * int, unit) Hashtbl.t;
  edge_support : (int * int, int ref) Hashtbl.t;
      (** direct edge → number of distinct statements deriving it *)
  stmt_copies : (int * int) list ref Itbl.t;
      (** stmt id → copy edges it installed, as install-time class ids *)
  copy_stmt_mem : (int * int * int, unit) Hashtbl.t;
  copy_support : (int * int, int ref) Hashtbl.t;
      (** copy edge → number of distinct statements installing it *)
  stmt_externs : string list ref Itbl.t;
      (** stmt id → unknown extern names the statement called, so
          retraction drops exactly the externs whose last caller died *)
  extern_support : (string, int ref) Hashtbl.t;
      (** extern name → number of distinct statements calling it *)
  mutable incr_stmts_added : int;  (** statements added by the last edit *)
  mutable incr_stmts_removed : int;
  mutable incr_facts_retracted : int;
      (** facts cleared from affected cells before the replay *)
  mutable incr_warm_visits : int;
      (** statement visits the warm-start resume performed *)
  mutable incr_stmts_replayed : int;
      (** statements the targeted replay re-enqueued (the whole program
          under a fallback scratch solve) *)
  mutable incr_fallback_planned : int;
      (** 1 when the incremental engine chose a scratch solve because
          its cost estimate said retraction could not win *)
  mutable summary_probe : (Nast.func -> bool) option;
      (** [`Summary]: consulted per function before its statements join
          the bottom-up pass; [true] means a cached summary was injected
          (via {!inject_edge}/{!inject_copy}) and the pass skips it —
          the closing whole-program pass still visits it, so a stale or
          partial injection costs work, never precision *)
  mutable summary_commit : (Nast.func -> unit) option;
      (** [`Summary]: called once per freshly summarized function when
          its SCC reached fixpoint but no caller has been solved — the
          point where its attributed constraints ([stmt_edges],
          [stmt_copies], under [track]) are a pure function of body,
          transitive callees, and configuration *)
  inst_mem : (int * string, unit) Hashtbl.t;
  mutable summary_sccs : int;
      (** [`Summary]: call-graph SCCs scheduled bottom-up *)
  mutable summary_scc_rounds : int;
      (** [`Summary]: SCC fixpoint rounds (≥ one per SCC; extras are
          function-pointer callee sets stabilizing at the boundary) *)
  mutable summary_instantiations : int;
      (** [`Summary]: distinct (call site, resolved callee) bindings *)
  mutable summary_hits : int;
      (** functions whose summary was injected from the cache *)
  mutable summary_recomputed : int;
      (** functions summarized from scratch *)
}

val collapse_sel : Cell.t -> Cell.t
(** The representative cell of a collapsed object, preserving the
    selector kind (paths collapse to the whole object, offsets to 0). *)

val create :
  ?layout:Layout.config ->
  ?arith:[ `Spread | `Copy | `Stride | `Unknown ] ->
  ?budget:Budget.limits ->
  ?engine:engine ->
  ?track:bool ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  t
(** [track] (default [false]) switches on per-statement support
    recording, the prerequisite for incremental retraction. *)

val collapse_object : t -> reason:Budget.reason -> Cvar.t -> unit
(** Degrade one object to a single cell now (idempotent): merge its
    edges onto the representative, discard in-flight deltas, and
    re-enqueue all statements. *)

val copy_edge_count : t -> int
(** Copy (subset-constraint) edges installed by the delta engines
    (cumulative — edges subsumed by a later class unification stay
    counted); 0 under [`Naive]. *)

val solve : t -> unit
(** Enqueue every statement and run the worklist to a fixpoint,
    degrading under budget pressure instead of diverging. *)

val enqueue : t -> Nast.stmt -> unit
(** Add one statement to the worklist (deduplicated). The incremental
    engine seeds a warm start with just the added statements. *)

val resume : t -> unit
(** Drain the worklist to a fixpoint from whatever is queued, without
    re-enqueueing anything — the warm-start entry point. *)

val set_program : t -> Nast.program -> unit
(** Swap in a new program (the incremental engine's aligned edit),
    keeping the function table consistent. Enqueues nothing. *)

val reset_deltas : t -> unit
(** Discard all delta-engine state (cursors, copy edges, worklists,
    union-find sharing) and attribution tables. Used on degradation
    collapses, where cells themselves change meaning. *)

val mark_dirty : t -> Nast.stmt -> unit
(** Reset the statement's cursors at its next visit, so it re-reads the
    full sets it consumes — the incremental engine marks every replayed
    statement dirty, because retraction may have cleared cells whose
    logs its cursors indexed. *)

val retract_cells :
  t ->
  affected:(int, unit) Hashtbl.t ->
  removed:(int, unit) Hashtbl.t ->
  invalidated:(int, unit) Hashtbl.t ->
  int
(** Targeted overdelete (delete-and-rederive, the selective counterpart
    of {!reset_deltas}): clear exactly the [affected] cells' facts —
    [affected] must be class-closed; the affected classes dissolve —
    purge the [removed] statements from every solver table, and drop the
    attribution of [invalidated] (surviving but input-changed)
    statements, while keeping cursors, copy edges, and attribution for
    everything else. Copy edges into or out of an affected class are
    dropped wholesale; the caller must replay their installing
    statements (plus the invalidated ones, marked dirty) to re-derive
    what still holds. Dead copy edges elsewhere are removed only when no
    aliasing install-time pair still supports them. Returns the
    member-expanded number of facts retracted. Requires a quiescent
    solver. *)

val inject_edge : t -> Cell.t -> Cell.t -> unit
(** Inject an externally derived points-to fact (a cached summary's
    direct edge) through the full [add_edge] path — consumers wake,
    drains queue, budgets charge — attributed to no statement. Callers
    must only inject facts that hold in the program's least fixpoint; a
    summary recorded under matching body, callee, and configuration
    digests qualifies. *)

val inject_copy : t -> dst:Cell.t -> src:Cell.t -> unit
(** Inject a subset constraint (a cached summary's copy edge),
    likewise unattributed; no-op under [`Naive]. *)

val run :
  ?layout:Layout.config ->
  ?arith:[ `Spread | `Copy | `Stride | `Unknown ] ->
  ?budget:Budget.limits ->
  ?engine:engine ->
  ?track:bool ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  t
(** {!create} followed by {!solve}. *)

val degradations : t -> Budget.event list
(** Degradation events recorded during [solve], oldest first. *)

val degraded : t -> bool
