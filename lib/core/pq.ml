(** A binary min-heap of (priority, id) pairs: the solver's cell
    worklist, drained in pseudo-topological order of the copy graph so
    facts flow roughly sources-before-sinks and each cell is visited
    with as full a set as possible.

    Ties break on the id so the pop order is a pure function of the push
    sequence — the solver's determinism contract (byte-identical reports
    across reruns) runs through here. *)

type t = {
  mutable prio : int array;
  mutable elt : int array;
  mutable len : int;
}

let create ?(cap = 64) () =
  let cap = max cap 1 in
  { prio = Array.make cap 0; elt = Array.make cap 0; len = 0 }

let is_empty h = h.len = 0

let length h = h.len

let clear h = h.len <- 0

let less h i j =
  h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.elt.(i) < h.elt.(j))

let swap h i j =
  let p = h.prio.(i) and e = h.elt.(i) in
  h.prio.(i) <- h.prio.(j);
  h.elt.(i) <- h.elt.(j);
  h.prio.(j) <- p;
  h.elt.(j) <- e

let push h ~prio x =
  if h.len = Array.length h.elt then begin
    let cap = 2 * h.len in
    let p = Array.make cap 0 and e = Array.make cap 0 in
    Array.blit h.prio 0 p 0 h.len;
    Array.blit h.elt 0 e 0 h.len;
    h.prio <- p;
    h.elt <- e
  end;
  h.prio.(h.len) <- prio;
  h.elt.(h.len) <- x;
  let i = ref h.len in
  h.len <- h.len + 1;
  while !i > 0 && less h !i ((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(** Pop the minimum-priority element. Raises [Invalid_argument] when
    empty — callers guard with {!is_empty}. *)
let pop h : int =
  if h.len = 0 then invalid_arg "Pq.pop: empty";
  let top = h.elt.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.prio.(0) <- h.prio.(h.len);
    h.elt.(0) <- h.elt.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && less h l !m then m := l;
      if r < h.len && less h r !m then m := r;
      if !m = !i then continue := false
      else begin
        swap h !i !m;
        i := !m
      end
    done
  end;
  top

let pop_opt h : int option = if h.len = 0 then None else Some (pop h)
