(** Compact sets of interned cell ids: the points-to set representation
    behind {!Graph}.

    Two parallel dynamic arrays back each set: [srt] keeps the member ids
    sorted (O(log n) membership, O(n) insertion by blit — points-to sets
    are small and cache-friendly), and [ord] keeps them in insertion
    order. Because a set only ever grows, the insertion-order array is an
    append-only log: a suffix [ord[k ..]] is exactly "the facts added
    since cursor [k]", which is what the delta-propagation solver consumes
    ({!iter_from}, {!get_ord}). *)

type t = {
  mutable srt : int array;  (** sorted member ids, first [len] entries *)
  mutable ord : int array;  (** same ids in insertion order *)
  mutable len : int;
}

let create ?(cap = 4) () =
  let cap = max cap 1 in
  { srt = Array.make cap (-1); ord = Array.make cap (-1); len = 0 }

let cardinal s = s.len

let is_empty s = s.len = 0

(* Index of the first sorted entry >= x (= s.len when none). *)
let lower_bound s x =
  let lo = ref 0 and hi = ref s.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.srt.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem s x =
  let i = lower_bound s x in
  i < s.len && s.srt.(i) = x

let grow s =
  if s.len = Array.length s.srt then begin
    let cap = 2 * Array.length s.srt in
    let srt = Array.make cap (-1) and ord = Array.make cap (-1) in
    Array.blit s.srt 0 srt 0 s.len;
    Array.blit s.ord 0 ord 0 s.len;
    s.srt <- srt;
    s.ord <- ord
  end

(** Add [x]; [true] iff it was not already a member. *)
let add s x =
  let i = lower_bound s x in
  if i < s.len && s.srt.(i) = x then false
  else begin
    grow s;
    Array.blit s.srt i s.srt (i + 1) (s.len - i);
    s.srt.(i) <- x;
    s.ord.(s.len) <- x;
    s.len <- s.len + 1;
    true
  end

(** The [i]-th member in insertion order. Stable under later additions,
    so an integer cursor into a set never invalidates. *)
let get_ord s i = s.ord.(i)

(** Iterate members in insertion order. *)
let iter f s =
  for i = 0 to s.len - 1 do
    f s.ord.(i)
  done

(** Iterate the members added at or after cursor [k] (insertion order).
    Additions made by [f] itself are *not* visited — the caller re-reads
    [cardinal] to pick up the new tail. *)
let iter_from k f s =
  let stop = s.len in
  for i = k to stop - 1 do
    f s.ord.(i)
  done

let fold f s init =
  let acc = ref init in
  for i = 0 to s.len - 1 do
    acc := f s.ord.(i) !acc
  done;
  !acc

(** Members in ascending id order. *)
let elements s = Array.to_list (Array.sub s.srt 0 s.len)

let copy s =
  { srt = Array.copy s.srt; ord = Array.copy s.ord; len = s.len }
