(** Compact sets of interned cell ids: the points-to set representation
    behind {!Graph}.

    Two parallel dynamic arrays back each set: [srt] keeps the member ids
    sorted (O(log n) membership, O(n) insertion by blit — points-to sets
    are small and cache-friendly), and [ord] keeps them in insertion
    order. Because a set only ever grows, the insertion-order array is an
    append-only log: a suffix [ord[k ..]] is exactly "the facts added
    since cursor [k]", which is what the delta-propagation solver consumes
    ({!iter_from}, {!get_ord}). *)

type t = {
  mutable srt : int array;  (** sorted member ids, first [len] entries *)
  mutable ord : int array;  (** same ids in insertion order *)
  mutable len : int;
}

let create ?(cap = 4) () =
  let cap = max cap 1 in
  { srt = Array.make cap (-1); ord = Array.make cap (-1); len = 0 }

let cardinal s = s.len

let is_empty s = s.len = 0

(* Index of the first sorted entry >= x (= s.len when none). *)
let lower_bound s x =
  let lo = ref 0 and hi = ref s.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.srt.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem s x =
  let i = lower_bound s x in
  i < s.len && s.srt.(i) = x

let grow s =
  if s.len = Array.length s.srt then begin
    let cap = 2 * Array.length s.srt in
    let srt = Array.make cap (-1) and ord = Array.make cap (-1) in
    Array.blit s.srt 0 srt 0 s.len;
    Array.blit s.ord 0 ord 0 s.len;
    s.srt <- srt;
    s.ord <- ord
  end

(** Add [x]; [true] iff it was not already a member. *)
let add s x =
  let i = lower_bound s x in
  if i < s.len && s.srt.(i) = x then false
  else begin
    grow s;
    Array.blit s.srt i s.srt (i + 1) (s.len - i);
    s.srt.(i) <- x;
    s.ord.(s.len) <- x;
    s.len <- s.len + 1;
    true
  end

(** The [i]-th member in insertion order. Stable under later additions,
    so an integer cursor into a set never invalidates. *)
let get_ord s i = s.ord.(i)

(** Iterate members in insertion order. *)
let iter f s =
  for i = 0 to s.len - 1 do
    f s.ord.(i)
  done

(** Iterate the members added at or after cursor [k] (insertion order).
    Additions made by [f] itself are *not* visited — the caller re-reads
    [cardinal] to pick up the new tail. *)
let iter_from k f s =
  let stop = s.len in
  for i = k to stop - 1 do
    f s.ord.(i)
  done

let fold f s init =
  let acc = ref init in
  for i = 0 to s.len - 1 do
    acc := f s.ord.(i) !acc
  done;
  !acc

(** [union_into dst src] adds every member of [src] missing from [dst]
    with one merge pass over the sorted arrays — a single rebuild instead
    of a per-element O(n) insertion blit. The new members are appended to
    [dst]'s insertion-order log in [src]'s insertion order, after the
    existing entries, so cursors into [dst]'s log stay valid (the old
    prefix is untouched). Returns the number of members added. *)
let union_into dst src =
  if dst == src || src.len = 0 then 0
  else begin
    (* collect src's members missing from dst, in src insertion order
       (membership tested against dst's pre-merge sorted array) *)
    let fresh = Array.make src.len 0 in
    let nf = ref 0 in
    for i = 0 to src.len - 1 do
      let x = src.ord.(i) in
      if not (mem dst x) then begin
        fresh.(!nf) <- x;
        incr nf
      end
    done;
    let n = !nf in
    if n = 0 then 0
    else begin
      let len = dst.len + n in
      let add_srt = Array.sub fresh 0 n in
      Array.sort compare add_srt;
      (* merge the two sorted runs *)
      let srt = Array.make len (-1) in
      let i = ref 0 and j = ref 0 in
      for k = 0 to len - 1 do
        if !i < dst.len && (!j >= n || dst.srt.(!i) < add_srt.(!j)) then begin
          srt.(k) <- dst.srt.(!i);
          incr i
        end
        else begin
          srt.(k) <- add_srt.(!j);
          incr j
        end
      done;
      let ord = Array.make len (-1) in
      Array.blit dst.ord 0 ord 0 dst.len;
      Array.blit fresh 0 ord dst.len n;
      dst.srt <- srt;
      dst.ord <- ord;
      dst.len <- len;
      n
    end
  end

(** Members in ascending id order. *)
let elements s = Array.to_list (Array.sub s.srt 0 s.len)

let copy s =
  { srt = Array.copy s.srt; ord = Array.copy s.ord; len = s.len }
