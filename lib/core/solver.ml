(** The fixpoint solver: applies the paper's inference rules 1–5 (Figure 2)
    over a normalized program until no new points-to facts appear.

    The solver is generic in the strategy (any {!Strategy.S}); the rules
    below call the strategy's [normalize]/[lookup]/[resolve] exactly where
    Figure 2 does. Interprocedural behaviour is context-insensitive:
    parameter and return bindings are virtual copy assignments generated
    per discovered callee, with indirect callees taken from the function
    pointer's points-to set as it grows. Library calls use
    {!Norm.Summaries}.

    Three engines share the rule code:

    - [`Delta] (default) — difference propagation with online cycle
      elimination. A statement visit consumes only the facts added to the
      pointer cells it reads since its last visit (an integer cursor into
      each {!Idset} append log), and [lookup]/[resolve] run on that delta
      only. The fact *transfers* a resolve derives become persistent copy
      edges (subset constraints) between cells; a priority worklist —
      keyed by a periodically recomputed pseudo-topological order of the
      copy graph, so facts flow roughly sources-before-sinks — pushes
      each new fact along its out-edges exactly once. Cells caught in a
      subset cycle ([a ⊆ b ⊆ … ⊆ a]) provably converge to the same set,
      so the engine detects such cycles lazily (Lazy Cycle Detection:
      a drain that moves facts but adds none, onto a destination whose
      set already equals the source's, triggers a bounded DFS looking for
      a path back) and {!Graph.unify}'s the members into one class
      sharing a single set — the facts stop circulating the cycle.
      Statements are only revisited when a cell they consume gains facts,
      or — for the Offsets instance, whose [resolve] pair set depends on
      which source cells carry facts ([Strategy.S.graph_resolve]) — when
      a subscribed object gains a new fact-bearing cell, which resets the
      statement's cursors so its resolves re-run over the full sets.

    - [`Delta_nocycle] — the same difference propagation with cycle
      elimination switched off: the ablation baseline that isolates the
      cycle win in benchmarks and differential tests.

    - [`Naive] — the reference engine: a statement worklist that re-reads
      entire points-to sets on every visit (statements subscribe to base
      objects; any new fact on the object re-enqueues them). Quadratic in
      the worst case, but a direct transcription of Figure 2 — retained
      as the differential-testing oracle for the delta engines.

    Resilience: the loop charges every processed statement against a
    {!Budget.t}. When a budget trips, the solver does not abort — it
    collapses the offending object(s) to a single cell (the
    Collapse-Always treatment applied per object), merges their edges,
    re-enqueues everything, and continues to a sound-but-coarser
    fixpoint. Collapsing is implemented by wrapping the strategy: every
    cell the base strategy produces for a collapsed object is redirected
    to that object's representative cell. A collapse invalidates in-flight
    deltas (cursors and copy edges reference pre-collapse cells) and
    dissolves the union-find classes ({!Graph.unshare} runs before the
    graph is rewritten), so the delta engine resets its delta state and
    the re-enqueued statements re-derive the constraints over the coarser
    cell space. *)

open Cfront
open Norm

module Itbl = Hashtbl.Make (Int)

type engine =
  [ `Delta | `Delta_nocycle | `Naive | `Delta_par of int | `Summary ]

type t = {
  ctx : Actx.t;
  graph : Graph.t;
  strategy : (module Strategy.S);
      (** the degradation-aware wrapper around [base_strategy] *)
  base_strategy : (module Strategy.S);
  budget : Budget.t;
  collapsed : unit Cvar.Tbl.t;  (** objects degraded to a single cell *)
  collapse_all : bool ref;
      (** set when a step/time/total budget trips: every object is
          treated as collapsed from then on *)
  engine : engine;
  mutable prog : Nast.program;
      (** mutable for incremental re-analysis: {!set_program} swaps in
          the aligned edited program between [resume]s *)
  funcs : (string, Nast.func) Hashtbl.t;
  queue : Nast.stmt Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  subscribers : Nast.stmt list ref Cvar.Tbl.t;
      (** naive: statements to re-run when the object gains any fact;
          delta: statements whose graph-dependent resolves must re-run
          when the object gains a new fact-bearing cell *)
  stmt_subs : Cvar.Set.t ref Itbl.t;  (** keyed by stmt id *)
  (* --- delta-engine state (empty under [`Naive]) ------------------- *)
  cursors : int Itbl.t Itbl.t;
      (** stmt id → (cell id → facts of that cell already consumed) *)
  dirty : unit Itbl.t;
      (** stmts whose cursors reset at their next visit (a subscribed
          object gained a new fact-bearing cell) *)
  pointer_subs : Nast.stmt list ref Itbl.t;
      (** class representative id → statements consuming that class's
          facts via cursor; re-keyed to the survivor on unification *)
  cell_subbed : (int * int, unit) Hashtbl.t;
      (** (stmt id, class id) pairs already in [pointer_subs] *)
  copy_out : (int * int ref) list ref Itbl.t;
      (** class id → (dst cell id, copy cursor into the class's log);
          edges move to the surviving class on unification, cursors
          reset (the merged log reordered the loser's facts) *)
  copy_mem : (int * int, unit) Hashtbl.t;  (** (src, dst) edge dedup *)
  copy_srcs : int list ref;
      (** [copy_out] keys in creation order — the deterministic DFS root
          sequence for the pseudo-topological order (hashtable iteration
          order depends on interned ids and would break run-to-run
          byte-identical reports) *)
  cell_pq : Pq.t;
      (** cells with facts not yet pushed out, drained in
          pseudo-topological order of the copy graph *)
  in_cell_wl : unit Itbl.t;
  order : int Itbl.t;
      (** class id → pseudo-topological rank (reverse postorder of the
          copy graph); unranked cells drain last *)
  mutable order_edges : int;
      (** [copy_mem] size when [order] was last recomputed; the order is
          refreshed once the edge count outgrows it by half *)
  lcd_done : (int * int, unit) Hashtbl.t;
      (** (src class, dst class) pairs that already triggered a cycle
          search — each wasted edge pays for at most one DFS *)
  mutable delta_gen : int;
      (** generation counter bumped by {!reset_deltas}: the parallel
          engine aborts an in-flight drain phase when a gap-side
          degradation invalidated the region partition and cursors the
          phase was built on *)
  (* --- profiling --------------------------------------------------- *)
  mutable rounds : int;  (** statement visits *)
  mutable facts_consumed : int;
      (** facts read by rule visits plus facts pushed along copy edges *)
  mutable delta_facts : int;
      (** facts rule visits actually iterated (the suffixes) *)
  mutable full_facts : int;
      (** set sizes those visits would have re-read naively *)
  mutable cycles_found : int;
      (** subset cycles collapsed by lazy cycle detection *)
  mutable cells_unified : int;
      (** cells folded into another class's representative *)
  mutable wasted_props : int;
      (** propagations that produced nothing new: statement visits that
          consumed facts but derived no edge, and copy-edge drains that
          moved facts but added none *)
  mutable par_frontier_rounds : int;
      (** [`Delta_par]: parallel drain rounds executed — each round
          solves the active regions concurrently, then joins at a
          sequential frontier gap *)
  mutable par_steals : int;
      (** [`Delta_par]: region claims by a domain other than the
          region's home domain (cross-domain load imbalance) *)
  arith_mode : [ `Spread | `Copy | `Stride | `Unknown ];
      (** How pointer arithmetic is modelled:
          - [`Spread] — the paper's Assumption-1 rule: the result may
            point to any cell of the pointed-to object;
          - [`Stride] — Wilson–Lam refinement (Section 6): arithmetic on a
            pointer into an array stays on the representative element, and
            only non-array targets spread;
          - [`Unknown] — the pessimistic alternative the paper discusses
            under Complication 3: the result is a distinguished Unknown
            value, usable to flag potential misuses of memory;
          - [`Copy] — optimistic ablation: the result aliases the
            operand. *)
  unknown_obj : Cvar.t;
      (** the distinguished target of [`Unknown]-mode arithmetic *)
  mutable unknown_externs : string list;
  (* --- incremental re-analysis support (PR 5) ----------------------- *)
  track : bool;
      (** record which statement derived which edge, so removals can
          retract exactly the facts whose support disappeared *)
  mutable cur_stmt : int;
      (** id of the statement being processed, [-1] between visits
          (copy-edge drains are attributed via the installing
          statement's copy edges, not here) *)
  stmt_edges : (int * int) list ref Itbl.t;
      (** stmt id → direct (src cell id, target cell id) edges the
          statement derived, deduplicated per statement *)
  edge_stmt_mem : (int * int * int, unit) Hashtbl.t;
      (** (stmt, src, target) triples already in [stmt_edges] *)
  edge_support : (int * int, int ref) Hashtbl.t;
      (** direct edge → number of distinct statements deriving it *)
  stmt_copies : (int * int) list ref Itbl.t;
      (** stmt id → copy (subset) edges the statement installed, as
          install-time class ids, deduplicated per statement *)
  copy_stmt_mem : (int * int * int, unit) Hashtbl.t;
  copy_support : (int * int, int ref) Hashtbl.t;
      (** copy edge → number of distinct statements installing it *)
  stmt_externs : string list ref Itbl.t;
      (** stmt id → unknown extern names the statement called,
          deduplicated per statement — so retraction can drop exactly
          the externs whose last calling statement went away *)
  extern_support : (string, int ref) Hashtbl.t;
      (** extern name → number of distinct statements calling it *)
  mutable incr_stmts_added : int;  (** statements added by the last edit *)
  mutable incr_stmts_removed : int;
  mutable incr_facts_retracted : int;
      (** facts cleared from affected cells before the replay *)
  mutable incr_warm_visits : int;
      (** statement visits the warm-start resume performed *)
  mutable incr_stmts_replayed : int;
      (** statements the targeted replay re-enqueued (the whole program
          under a fallback scratch solve) *)
  mutable incr_fallback_planned : int;
      (** 1 when the incremental engine chose a scratch solve because
          its cost estimate said retraction could not win *)
  (* --- bottom-up summary schedule (the [`Summary] engine) ----------- *)
  mutable summary_probe : (Nast.func -> bool) option;
      (** consulted before a function's statements are enqueued in the
          bottom-up pass; returning [true] means a cached summary was
          injected for it ([lib/summary]'s store hook), so the pass
          skips its statements — the closing whole-program pass still
          visits them, which is what makes a stale or partial injection
          harmless *)
  mutable summary_commit : (Nast.func -> unit) option;
      (** called once per freshly summarized function, at the moment its
          SCC (and every callee below it) reached fixpoint but no caller
          has been solved — the point where the function's attributed
          constraints are a pure function of its body, its transitive
          callees, and the configuration *)
  inst_mem : (int * string, unit) Hashtbl.t;
      (** (call stmt id, callee) pairs already counted as summary
          instantiations *)
  mutable summary_sccs : int;
      (** [`Summary]: call-graph SCCs scheduled bottom-up *)
  mutable summary_scc_rounds : int;
      (** [`Summary]: SCC fixpoint rounds, ≥ one per SCC — extra rounds
          are function-pointer callee sets stabilizing at the boundary *)
  mutable summary_instantiations : int;
      (** [`Summary]: distinct (call site, resolved callee) bindings
          instantiated *)
  mutable summary_hits : int;
      (** functions whose summary was injected from the cache *)
  mutable summary_recomputed : int;
      (** functions summarized from scratch *)
}

(* ------------------------------------------------------------------ *)
(* Per-object collapse: the degrading strategy wrapper                 *)
(* ------------------------------------------------------------------ *)

(** The representative cell of a collapsed object, preserving the
    strategy's selector kind: path-based cells collapse to the whole
    object, offset cells to offset 0. *)
let collapse_sel (c : Cell.t) : Cell.t =
  match c.Cell.sel with
  | Cell.Path [] | Cell.Off 0 -> c
  | Cell.Path _ -> Cell.whole c.Cell.base
  | Cell.Off _ -> Cell.v c.Cell.base (Cell.Off 0)

(** Wrap [base] so that every cell it produces for a collapsed object is
    redirected to that object's single representative cell — the
    Collapse-Always treatment applied per object. Sound because pointing
    at the representative stands for pointing anywhere in the object (the
    paper's Section 4.3.1 reading), and the solver merges the collapsed
    object's existing edges onto the representative when it collapses. *)
let degrading_strategy ~(collapsed : unit Cvar.Tbl.t)
    ~(collapse_all : bool ref) (module B : Strategy.S) : (module Strategy.S) =
  (module struct
    let name = B.name
    let id = B.id
    let portable = B.portable
    let graph_resolve = B.graph_resolve

    let is_collapsed (v : Cvar.t) = !collapse_all || Cvar.Tbl.mem collapsed v

    let redirect (c : Cell.t) : Cell.t =
      if is_collapsed c.Cell.base then collapse_sel c else c

    let normalize ctx v alpha = redirect (B.normalize ctx v alpha)

    let lookup ctx tau alpha target =
      Strategy.dedup_cells
        (List.map redirect (B.lookup ctx tau alpha (redirect target)))

    let resolve ctx graph dst src tau =
      let pairs = B.resolve ctx graph (redirect dst) (redirect src) tau in
      Strategy.dedup_pairs
        (List.map (fun (d, s) -> (redirect d, redirect s)) pairs)

    let all_cells ctx obj =
      if is_collapsed obj then [ redirect (B.normalize ctx obj []) ]
      else B.all_cells ctx obj

    let in_array = B.in_array

    let expand_for_metrics ctx c =
      let c = redirect c in
      if is_collapsed c.Cell.base then
        (* a collapsed target stands for the whole object: expand to all
           of its cells, mirroring Collapse-Always metrics accounting *)
        match B.all_cells ctx c.Cell.base with
        | [ only ] when Cell.equal only c -> B.expand_for_metrics ctx c
        | cells -> cells
      else B.expand_for_metrics ctx c
  end)

let create ?(layout = Layout.default) ?(arith = `Spread)
    ?(budget = Budget.unlimited) ?(engine = `Delta) ?(track = false) ~strategy
    (prog : Nast.program) : t =
  let funcs = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace funcs f.Nast.fname f) prog.Nast.pfuncs;
  let collapsed = Cvar.Tbl.create 16 in
  let collapse_all = ref false in
  {
    ctx = Actx.create ~layout ();
    graph = Graph.create ();
    strategy = degrading_strategy ~collapsed ~collapse_all strategy;
    base_strategy = strategy;
    budget = Budget.create ~limits:budget ();
    collapsed;
    collapse_all;
    engine;
    prog;
    funcs;
    queue = Queue.create ();
    in_queue = Hashtbl.create 256;
    subscribers = Cvar.Tbl.create 128;
    stmt_subs = Itbl.create 256;
    cursors = Itbl.create 256;
    dirty = Itbl.create 64;
    pointer_subs = Itbl.create 256;
    cell_subbed = Hashtbl.create 512;
    copy_out = Itbl.create 256;
    copy_mem = Hashtbl.create 512;
    copy_srcs = ref [];
    cell_pq = Pq.create ();
    in_cell_wl = Itbl.create 256;
    order = Itbl.create 256;
    order_edges = 0;
    lcd_done = Hashtbl.create 64;
    delta_gen = 0;
    rounds = 0;
    facts_consumed = 0;
    delta_facts = 0;
    full_facts = 0;
    cycles_found = 0;
    cells_unified = 0;
    wasted_props = 0;
    par_frontier_rounds = 0;
    par_steals = 0;
    arith_mode = arith;
    unknown_obj = Cvar.fresh ~name:"$unknown" ~ty:Ctype.Void ~kind:Cvar.Global;
    unknown_externs = [];
    track;
    cur_stmt = -1;
    stmt_edges = Itbl.create (if track then 256 else 1);
    edge_stmt_mem = Hashtbl.create (if track then 512 else 1);
    edge_support = Hashtbl.create (if track then 512 else 1);
    stmt_copies = Itbl.create (if track then 256 else 1);
    copy_stmt_mem = Hashtbl.create (if track then 512 else 1);
    copy_support = Hashtbl.create (if track then 512 else 1);
    stmt_externs = Itbl.create (if track then 16 else 1);
    extern_support = Hashtbl.create (if track then 16 else 1);
    incr_stmts_added = 0;
    incr_stmts_removed = 0;
    incr_facts_retracted = 0;
    incr_warm_visits = 0;
    incr_stmts_replayed = 0;
    incr_fallback_planned = 0;
    summary_probe = None;
    summary_commit = None;
    inst_mem = Hashtbl.create (if engine = `Summary then 64 else 1);
    summary_sccs = 0;
    summary_scc_rounds = 0;
    summary_instantiations = 0;
    summary_hits = 0;
    summary_recomputed = 0;
  }

(** Both difference-propagation engines ([`Delta] and [`Delta_nocycle]). *)
let is_delta t = t.engine <> `Naive

(** Cycle elimination runs under the full [`Delta] engine, its
    domain-parallel sibling (where unification is deferred to the
    sequential frontier gaps), and the bottom-up summary schedule
    (whose drains are the sequential delta ones). *)
let cycles_on t =
  match t.engine with
  | `Delta | `Delta_par _ | `Summary -> true
  | _ -> false

let canon_id t (cid : int) : int =
  Cell.id (Graph.canon t.graph (Cell.of_id cid))

let enqueue t (s : Nast.stmt) =
  if not (Hashtbl.mem t.in_queue s.Nast.id) then begin
    Hashtbl.replace t.in_queue s.Nast.id ();
    Queue.add s t.queue
  end

(** Subscribe [stmt] to future facts on [obj] (naive: any fact; delta:
    new fact-bearing cells, for graph-dependent resolves). *)
let subscribe t (stmt : Nast.stmt) (obj : Cvar.t) =
  let subs =
    match Itbl.find_opt t.stmt_subs stmt.Nast.id with
    | Some s -> s
    | None ->
        let s = ref Cvar.Set.empty in
        Itbl.replace t.stmt_subs stmt.Nast.id s;
        s
  in
  if not (Cvar.Set.mem obj !subs) then begin
    subs := Cvar.Set.add obj !subs;
    let lst =
      match Cvar.Tbl.find_opt t.subscribers obj with
      | Some l -> l
      | None ->
          let l = ref [] in
          Cvar.Tbl.replace t.subscribers obj l;
          l
    in
    lst := stmt :: !lst
  end

(* ------------------------------------------------------------------ *)
(* Delta bookkeeping                                                   *)
(* ------------------------------------------------------------------ *)

let cursor_tbl t (stmt : Nast.stmt) : int Itbl.t =
  match Itbl.find_opt t.cursors stmt.Nast.id with
  | Some tbl -> tbl
  | None ->
      let tbl = Itbl.create 8 in
      Itbl.replace t.cursors stmt.Nast.id tbl;
      tbl

(** Register [stmt] as a cursor-consumer of [c]'s facts (keyed by [c]'s
    class, so unification can find and reset the class's consumers). *)
let pointer_subscribe t (stmt : Nast.stmt) (c : Cell.t) =
  let rid = canon_id t (Cell.id c) in
  let key = (stmt.Nast.id, rid) in
  if not (Hashtbl.mem t.cell_subbed key) then begin
    Hashtbl.replace t.cell_subbed key ();
    let lst =
      match Itbl.find_opt t.pointer_subs rid with
      | Some l -> l
      | None ->
          let l = ref [] in
          Itbl.replace t.pointer_subs rid l;
          l
    in
    lst := stmt :: !lst
  end

let subs_list t (rid : int) : Nast.stmt list ref =
  match Itbl.find_opt t.pointer_subs rid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Itbl.replace t.pointer_subs rid l;
      l

let copy_list t (sid : int) : (int * int ref) list ref =
  match Itbl.find_opt t.copy_out sid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Itbl.replace t.copy_out sid l;
      t.copy_srcs := sid :: !(t.copy_srcs);
      l

(** Pseudo-topological rank of a cell ([max_int] when unranked: cells
    discovered since the last recompute drain after ranked ones). *)
let rank t (cid : int) : int =
  match Itbl.find_opt t.order cid with Some p -> p | None -> max_int

let push_cell t (cid : int) =
  if Itbl.mem t.copy_out cid && not (Itbl.mem t.in_cell_wl cid) then begin
    Itbl.replace t.in_cell_wl cid ();
    Pq.push t.cell_pq ~prio:(rank t cid) cid
  end

let mark_dirty t (stmt : Nast.stmt) = Itbl.replace t.dirty stmt.Nast.id ()

(** Number of copy (subset-constraint) edges installed (cumulative:
    edges subsumed by a later class unification stay counted). *)
let copy_edge_count t = Hashtbl.length t.copy_mem

(* ------------------------------------------------------------------ *)
(* Support tracking (incremental re-analysis)                          *)
(* ------------------------------------------------------------------ *)

let attr_list (tbl : (int * int) list ref Itbl.t) (sid : int) =
  match Itbl.find_opt tbl sid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Itbl.replace tbl sid l;
      l

let support_incr (tbl : (int * int, int ref) Hashtbl.t) (edge : int * int) =
  match Hashtbl.find_opt tbl edge with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl edge (ref 1)

(** A statement visit derived the direct edge [cid → wid] (it may
    already exist — an independent derivation still counts as support:
    the fact survives as long as any deriving statement does). *)
let record_direct t (cid : int) (wid : int) =
  let key = (t.cur_stmt, cid, wid) in
  if not (Hashtbl.mem t.edge_stmt_mem key) then begin
    Hashtbl.replace t.edge_stmt_mem key ();
    let l = attr_list t.stmt_edges t.cur_stmt in
    l := (cid, wid) :: !l;
    support_incr t.edge_support (cid, wid)
  end

(** A statement visit installed (or re-derived) the copy constraint
    [sid ⊆ did], as install-time class ids. Recorded before the
    [copy_mem] dedup: a second statement deriving the same constraint
    keeps it alive when the first is removed. *)
let record_copy t (sid : int) (did : int) =
  let key = (t.cur_stmt, sid, did) in
  if not (Hashtbl.mem t.copy_stmt_mem key) then begin
    Hashtbl.replace t.copy_stmt_mem key ();
    let l = attr_list t.stmt_copies t.cur_stmt in
    l := (sid, did) :: !l;
    support_incr t.copy_support (sid, did)
  end

(** The statement being processed called extern [fname], for which no
    body and no summary exists. The name joins the global list once;
    with tracking on, it is also attributed to the statement so targeted
    retraction can drop externs whose last caller went away. *)
let record_extern t (fname : string) =
  if not (List.mem fname t.unknown_externs) then
    t.unknown_externs <- fname :: t.unknown_externs;
  if t.track && t.cur_stmt >= 0 then begin
    let l =
      match Itbl.find_opt t.stmt_externs t.cur_stmt with
      | Some l -> l
      | None ->
          let l = ref [] in
          Itbl.replace t.stmt_externs t.cur_stmt l;
          l
    in
    if not (List.mem fname !l) then begin
      l := fname :: !l;
      match Hashtbl.find_opt t.extern_support fname with
      | Some r -> incr r
      | None -> Hashtbl.replace t.extern_support fname (ref 1)
    end
  end

(** Drop a statement's extern attribution; an extern whose support hits
    zero leaves the global list (its last calling statement is gone, or
    about to be replayed and re-record it). *)
let purge_stmt_externs t (sid : int) =
  match Itbl.find_opt t.stmt_externs sid with
  | None -> ()
  | Some l ->
      List.iter
        (fun fname ->
          match Hashtbl.find_opt t.extern_support fname with
          | Some r ->
              decr r;
              if !r <= 0 then begin
                Hashtbl.remove t.extern_support fname;
                t.unknown_externs <-
                  List.filter (fun n -> n <> fname) t.unknown_externs
              end
          | None -> ())
        !l;
      Itbl.remove t.stmt_externs sid

(** Drop all attribution state (it names cells and statements of the
    solved program and is rebuilt by the replay). *)
let reset_tracking t =
  if t.track then begin
    Itbl.reset t.stmt_edges;
    Hashtbl.reset t.edge_stmt_mem;
    Hashtbl.reset t.edge_support;
    Itbl.reset t.stmt_copies;
    Hashtbl.reset t.copy_stmt_mem;
    Hashtbl.reset t.copy_support;
    Itbl.reset t.stmt_externs;
    Hashtbl.reset t.extern_support
  end

(** Collapse invalidates cursors and copy edges (they reference
    pre-collapse cells) and the union-find classes (they were proven
    over pre-collapse constraints): drop all delta state and unshare the
    graph. Runs BEFORE the collapse rewrites the graph — the rewrite
    ([Graph.remove_source]) needs the unshared, per-cell view. The
    caller re-enqueues every statement, and re-derivation rebuilds the
    constraints — and recopies the merged representative sets — over the
    coarser cells. *)
let reset_deltas t =
  t.delta_gen <- t.delta_gen + 1;
  if is_delta t then begin
    Itbl.reset t.cursors;
    Itbl.reset t.dirty;
    Itbl.reset t.pointer_subs;
    Hashtbl.reset t.cell_subbed;
    Itbl.reset t.copy_out;
    Hashtbl.reset t.copy_mem;
    t.copy_srcs := [];
    Pq.clear t.cell_pq;
    Itbl.reset t.in_cell_wl;
    Itbl.reset t.order;
    t.order_edges <- 0;
    Hashtbl.reset t.lcd_done;
    Graph.unshare t.graph
  end;
  reset_tracking t

(* ------------------------------------------------------------------ *)
(* Targeted retraction (delete-and-rederive)                           *)
(* ------------------------------------------------------------------ *)

(** Selective counterpart of {!reset_deltas} — the overdelete half of
    the incremental engine's delete-and-rederive. Clears exactly the
    [affected] cells' facts and the solver state that names them, while
    keeping cursors, copy edges, and attribution for everything else:
    surviving consumers keep their consumed-prefix positions, so the
    rederive replay only pays for facts that actually moved.

    [affected] must be class-closed (every member of a marked class
    present). Affected classes are dissolved — the subset cycle that
    justified a unification may have died with the edit, and the replay
    re-proves any cycle that still holds. [removed] statements are
    physically purged from every subscriber, cursor, and attribution
    table (a later alignment may re-mint their ids). [invalidated]
    statements survive the edit but read an affected cell, so their old
    derivations cannot be trusted: their attribution is purged too, and
    the caller must replay them (re-derivation re-records it exactly).

    Copy support is counted per install-time (src, dst) class-id pair,
    and after unifications several pairs can alias one physical edge, so
    a physical edge whose pair's support hits zero is only removed when
    the aggregate support of every pair canonicalizing onto it is gone.
    Copy edges whose source or destination class is affected are dropped
    wholesale — once the class dissolves, an edge keyed by the old
    representative would deliver facts to the wrong cell — and the
    caller replays their installers to re-install them over the
    dissolved cells.

    Returns the member-expanded number of facts retracted. Requires a
    quiescent solver (both worklists drained). *)
let retract_cells t ~(affected : (int, unit) Hashtbl.t)
    ~(removed : (int, unit) Hashtbl.t)
    ~(invalidated : (int, unit) Hashtbl.t) : int =
  let aff cid = Hashtbl.mem affected cid in
  let gone sid = Hashtbl.mem removed sid in
  (* attribution purge for removed and invalidated statements; collect
     copy pairs whose support ran out *)
  let dead_copies = ref [] in
  let drop_copy_pair sid ((cs, cd) as e) =
    Hashtbl.remove t.copy_stmt_mem (sid, cs, cd);
    match Hashtbl.find_opt t.copy_support e with
    | Some r ->
        decr r;
        if !r <= 0 then begin
          Hashtbl.remove t.copy_support e;
          dead_copies := e :: !dead_copies
        end
    | None -> ()
  in
  let purge_stmt_attr sid =
    (match Itbl.find_opt t.stmt_edges sid with
    | Some l ->
        List.iter
          (fun ((c, w) as e) ->
            Hashtbl.remove t.edge_stmt_mem (sid, c, w);
            match Hashtbl.find_opt t.edge_support e with
            | Some r ->
                decr r;
                if !r <= 0 then Hashtbl.remove t.edge_support e
            | None -> ())
          !l;
        Itbl.remove t.stmt_edges sid
    | None -> ());
    (match Itbl.find_opt t.stmt_copies sid with
    | Some l ->
        List.iter (drop_copy_pair sid) !l;
        Itbl.remove t.stmt_copies sid
    | None -> ());
    purge_stmt_externs t sid
  in
  Hashtbl.iter (fun sid () -> purge_stmt_attr sid) removed;
  Hashtbl.iter
    (fun sid () -> if not (gone sid) then purge_stmt_attr sid)
    invalidated;
  (* surviving statements' copy pairs that touch an affected class: the
     physical edges are dropped below and the installers replayed, so
     stale pairs must not keep support alive *)
  Itbl.iter
    (fun sid l ->
      if
        (not (gone sid || Hashtbl.mem invalidated sid))
        && List.exists (fun (cs, cd) -> aff cs || aff cd) !l
      then begin
        let keep, drop =
          List.partition (fun (cs, cd) -> not (aff cs || aff cd)) !l
        in
        List.iter (drop_copy_pair sid) drop;
        l := keep
      end)
    t.stmt_copies;
  (* physical copy edges touching an affected class, dropped wholesale *)
  let drop_lists = ref [] in
  Itbl.iter
    (fun rs lst ->
      if aff rs then drop_lists := rs :: !drop_lists
      else if List.exists (fun (did, _) -> aff did) !lst then
        lst := List.filter (fun (did, _) -> not (aff did)) !lst)
    t.copy_out;
  List.iter (fun rs -> Itbl.remove t.copy_out rs) !drop_lists;
  let mem_drop = ref [] in
  Hashtbl.iter
    (fun ((x, d) as k) () -> if aff x || aff d then mem_drop := k :: !mem_drop)
    t.copy_mem;
  List.iter (Hashtbl.remove t.copy_mem) !mem_drop;
  (* dead physical copy edges away from the affected region: removable
     only when no surviving install-time pair aliases them *)
  List.iter
    (fun (cs, cd) ->
      if not (aff cs || aff cd) then begin
        let rs = canon_id t cs in
        let alive =
          Hashtbl.fold
            (fun (cs', cd') _ acc -> acc || (cd' = cd && canon_id t cs' = rs))
            t.copy_support false
        in
        if not alive then begin
          (match Itbl.find_opt t.copy_out rs with
          | Some lst -> lst := List.filter (fun (did, _) -> did <> cd) !lst
          | None -> ());
          let stale = ref [] in
          Hashtbl.iter
            (fun ((x, d) as k) () ->
              if d = cd && canon_id t x = rs then stale := k :: !stale)
            t.copy_mem;
          List.iter (Hashtbl.remove t.copy_mem) !stale
        end
      end)
    !dead_copies;
  (* statement-keyed delta state: removed statements are physically
     purged (their ids may be re-minted); invalidated ones lose their
     cursors (replay re-reads from scratch) but keep their object
     subscriptions, which stay valid *)
  Hashtbl.iter
    (fun sid () ->
      Itbl.remove t.cursors sid;
      Itbl.remove t.dirty sid;
      Itbl.remove t.stmt_subs sid)
    removed;
  Hashtbl.iter
    (fun sid () -> if not (gone sid) then Itbl.remove t.cursors sid)
    invalidated;
  (* cursor subscriptions into an affected class die with it: the class
     dissolves, so facts re-derived onto its former members land under
     new representative keys this list would never be consulted for.
     Every stmt in such a list was woken by the closure (pointer_subs is
     its wake channel), so each re-subscribes — under the fresh key — at
     its replay visit. The dedup keys must go too, or the stale entry
     silently swallows that re-subscription. *)
  let psub_drop = ref [] in
  Itbl.iter
    (fun rid lst ->
      if aff rid then psub_drop := rid :: !psub_drop
      else if List.exists (fun (s : Nast.stmt) -> gone s.Nast.id) !lst then
        lst := List.filter (fun (s : Nast.stmt) -> not (gone s.Nast.id)) !lst)
    t.pointer_subs;
  List.iter (Itbl.remove t.pointer_subs) !psub_drop;
  let subbed_drop = ref [] in
  Hashtbl.iter
    (fun ((sid, rid) as k) () ->
      if gone sid || aff rid then subbed_drop := k :: !subbed_drop)
    t.cell_subbed;
  List.iter (Hashtbl.remove t.cell_subbed) !subbed_drop;
  Cvar.Tbl.iter
    (fun _ lst ->
      if List.exists (fun (s : Nast.stmt) -> gone s.Nast.id) !lst then
        lst := List.filter (fun (s : Nast.stmt) -> not (gone s.Nast.id)) !lst)
    t.subscribers;
  (* forget cycle searches naming affected classes — the re-derived
     configuration deserves a fresh look *)
  let lcd_drop = ref [] in
  Hashtbl.iter
    (fun ((a, b) as k) () -> if aff a || aff b then lcd_drop := k :: !lcd_drop)
    t.lcd_done;
  List.iter (Hashtbl.remove t.lcd_done) !lcd_drop;
  (* finally clear the affected classes' facts and dissolve them; the
     canonical representatives must be computed before any dissolution *)
  let reps = Hashtbl.create 64 in
  Hashtbl.iter
    (fun cid () ->
      let r = canon_id t cid in
      if not (Hashtbl.mem reps r) then Hashtbl.replace reps r ())
    affected;
  let rep_list =
    List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) reps [])
  in
  List.fold_left
    (fun acc rid -> acc + Graph.retract_class t.graph (Cell.of_id rid))
    0 rep_list

(* ------------------------------------------------------------------ *)
(* Degradation                                                         *)
(* ------------------------------------------------------------------ *)

let is_collapsed_obj t (v : Cvar.t) =
  !(t.collapse_all) || Cvar.Tbl.mem t.collapsed v

let redirect_cell t (c : Cell.t) : Cell.t =
  if is_collapsed_obj t c.Cell.base then collapse_sel c else c

(** No object collapsed yet: cells need no redirection, which permits
    the bulk (one-merge-pass) copy-edge drain. *)
let pristine t =
  (not !(t.collapse_all)) && Cvar.Tbl.length t.collapsed = 0

(** Collapse [obj] to its representative cell: record the event, discard
    delta state (and class sharing), merge the edges its fine-grained
    cells carry onto the representative, and re-enqueue every statement
    so the fixpoint is re-established over the coarser cell space.
    Idempotent. *)
let collapse_object t ~(reason : Budget.reason) (obj : Cvar.t) =
  if not (Cvar.Tbl.mem t.collapsed obj) then begin
    Cvar.Tbl.replace t.collapsed obj ();
    Budget.record t.budget ~obj reason;
    reset_deltas t;
    List.iter
      (fun (c : Cell.t) ->
        let rep = collapse_sel c in
        if not (Cell.equal rep c) then begin
          Cell.Set.iter
            (fun w -> ignore (Graph.add_edge t.graph rep w))
            (Graph.pts t.graph c);
          Graph.remove_source t.graph c
        end)
      (Graph.cells_of_obj t.graph obj);
    List.iter (enqueue t) (Nast.all_stmts t.prog)
  end

(** Global degradation (step/time/total-cell budgets): collapse every
    object whose facts are spread over several cells, then treat all
    objects as collapsed from here on. The solver then continues to the
    Collapse-Always-shaped fixpoint, which terminates: the cell space is
    one cell per object and the transfer functions are monotone. *)
let degrade_all t ~(reason : Budget.reason) =
  let offenders =
    Graph.fold_objects t.graph
      (fun v cells acc ->
        if Cell.Set.cardinal cells > 1 && not (Cvar.Tbl.mem t.collapsed v)
        then v :: acc
        else acc)
      []
  in
  (* sorted so the collapse (and event) order is independent of hash
     bucketing — reruns of the same input produce identical ledgers *)
  let offenders = List.sort Cvar.compare offenders in
  if offenders = [] then Budget.record t.budget reason
  else List.iter (fun obj -> collapse_object t ~reason obj) offenders;
  t.collapse_all := true;
  reset_deltas t;
  List.iter (enqueue t) (Nast.all_stmts t.prog)

(** Cell-count budgets, checked as edges land. *)
let check_cell_budgets t (src : Cell.t) =
  (match t.budget.Budget.limits.Budget.max_cells_per_object with
  | Some limit when not (is_collapsed_obj t src.Cell.base) ->
      if Graph.cell_count_of_obj t.graph src.Cell.base > limit then
        collapse_object t ~reason:(Budget.Object_cells limit) src.Cell.base
  | _ -> ());
  match t.budget.Budget.limits.Budget.max_total_cells with
  | Some limit
    when Budget.over_total t.budget
           ~total_cells:(Graph.source_cell_count t.graph) ->
      Budget.trip_total t.budget;
      degrade_all t ~reason:(Budget.Total_cells limit)
  | _ -> ()

(** Wake the statements subscribed to a cell that just became
    fact-bearing: a new fact-bearing cell can grow a graph-dependent
    resolve pair set (Offsets), so those statements' cursors reset and
    their resolves re-run over the full sets. *)
let notify_new_source t (c : Cell.t) =
  match Cvar.Tbl.find_opt t.subscribers c.Cell.base with
  | Some lst ->
      List.iter
        (fun s ->
          mark_dirty t s;
          enqueue t s)
        !lst
  | None -> ()

let add_edge t (c : Cell.t) (w : Cell.t) =
  let c = redirect_cell t c and w = redirect_cell t w in
  if t.track && t.cur_stmt >= 0 then record_direct t (Cell.id c) (Cell.id w);
  let was_source = Graph.has_source t.graph c in
  if Graph.add_edge t.graph c w then begin
    (match t.engine with
    | `Naive -> (
        match Cvar.Tbl.find_opt t.subscribers c.Cell.base with
        | Some lst -> List.iter (enqueue t) !lst
        | None -> ())
    | `Delta | `Delta_nocycle | `Delta_par _ | `Summary ->
        let rid = canon_id t (Cell.id c) in
        (* the new fact flows along the class's copy edges… *)
        push_cell t rid;
        (* …and to the statements consuming the class's set via cursor *)
        (match Itbl.find_opt t.pointer_subs rid with
        | Some lst -> List.iter (enqueue t) !lst
        | None -> ());
        if not was_source then
          (* every member of the class became fact-bearing at once *)
          List.iter (notify_new_source t) (Graph.class_members t.graph c));
    check_cell_budgets t c
  end

(* ------------------------------------------------------------------ *)
(* Online cycle elimination                                            *)
(* ------------------------------------------------------------------ *)

(** Re-target the solver's per-class state after {!Graph.unify} merged
    [b]'s class into [a]'s (or vice versa — the graph picks the survivor
    whose log prefix stays cursor-valid):

    - the losing class's copy edges move to the survivor with cursors
      reset to 0 (the merged log appended the loser's facts in a new
      order); edges that became intra-class tautologies are dropped;
    - the losing class's cursor-consumers have their cursors translated
      when possible — a consumer that had read the loser's whole log,
      merged into an equal set, has by definition seen every fact of the
      merged set, so its cursor jumps to the merged log's end and no
      revisit happens (the common case: a cycle's sets are equal at
      collapse time) — and removed otherwise (they indexed the dead
      log), with the statement re-enqueued to re-read from scratch;
    - the survivor's consumers re-run only when the merge actually grew
      the surviving set;
    - cells that just became fact-bearing wake their graph-dependent
      resolve subscriptions, exactly like a first [add_edge] would. *)
let unify_cells t (a : Cell.t) (b : Cell.t) =
  let ra = Graph.canon t.graph a and rb = Graph.canon t.graph b in
  if not (Cell.equal ra rb) then begin
    let ma = Graph.class_members t.graph ra in
    let mb = Graph.class_members t.graph rb in
    let na = Graph.pts_size t.graph ra and nb = Graph.pts_size t.graph rb in
    let rep, newly = Graph.unify t.graph ra rb in
    let loser, lmembers, ln, wn =
      if Cell.equal rep ra then (rb, mb, nb, na) else (ra, ma, na, nb)
    in
    let wid = Cell.id rep and lid = Cell.id loser in
    let after = Graph.pts_size t.graph rep in
    (* equal sets, nothing appended: the loser's log held exactly the
       merged set's facts, just in another order *)
    let sets_eq = after = wn && ln = wn in
    t.cells_unified <- t.cells_unified + List.length lmembers;
    (match Itbl.find_opt t.copy_out lid with
    | Some llst ->
        Itbl.remove t.copy_out lid;
        let wlst = copy_list t wid in
        List.iter
          (fun (did, cur) ->
            if
              canon_id t did <> wid && not (Hashtbl.mem t.copy_mem (wid, did))
            then begin
              Hashtbl.replace t.copy_mem (wid, did) ();
              cur := 0;
              wlst := (did, cur) :: !wlst
            end)
          !llst
    | None -> ());
    (match Itbl.find_opt t.pointer_subs lid with
    | Some lst ->
        Itbl.remove t.pointer_subs lid;
        let wl = subs_list t wid in
        List.iter
          (fun (s : Nast.stmt) ->
            let needs = ref false in
            (match Itbl.find_opt t.cursors s.Nast.id with
            | Some tbl ->
                List.iter
                  (fun (m : Cell.t) ->
                    let mid = Cell.id m in
                    match Itbl.find_opt tbl mid with
                    | Some k when sets_eq && k >= ln ->
                        (* caught up on an equal set: already saw every
                           merged fact — jump to the merged log's end *)
                        Itbl.replace tbl mid after
                    | Some _ ->
                        Itbl.remove tbl mid;
                        needs := true
                    | None -> ())
                  lmembers
            | None -> ());
            (* a consumer with no cursor entry that still has facts to
               see (it subscribed before the class had any) is already
               queued from when those facts landed; [not sets_eq] means
               the merge brought facts no loser-side consumer ever saw *)
            if !needs || ((not sets_eq) && after > 0) then enqueue t s;
            wl := s :: !wl)
          !lst
    | None -> ());
    if after > wn then (
      match Itbl.find_opt t.pointer_subs wid with
      | Some lst -> List.iter (enqueue t) !lst
      | None -> ());
    List.iter (notify_new_source t) newly;
    push_cell t wid
  end

(** Bound on the nodes a single lazy-cycle-detection DFS may touch:
    keeps the search cost proportional to the wasted drain that paid
    for it, even on huge copy graphs. *)
let lcd_limit = 128

(** Bounded DFS over the representative-level copy graph: a path
    [from → … → target], as the list of its nodes excluding [target]
    ([from] first), or [None]. Only reads solver state. *)
let find_path t ~(from : int) ~(target : int) : int list option =
  let visited = Itbl.create 32 in
  let steps = ref 0 in
  let rec go (n : int) : int list option =
    if !steps >= lcd_limit || Itbl.mem visited n then None
    else begin
      Itbl.replace visited n ();
      incr steps;
      match Itbl.find_opt t.copy_out n with
      | None -> None
      | Some lst ->
          let rec try_edges = function
            | [] -> None
            | (did, _) :: rest -> (
                let d = canon_id t did in
                if d = target then Some [ n ]
                else
                  match go d with
                  | Some path -> Some (n :: path)
                  | None -> try_edges rest)
          in
          try_edges !lst
    end
  in
  go from

(** A drain along [target → from] just moved facts without adding any,
    onto an already-equal set — the lazy-cycle-detection trigger. Search
    for a return path [from → … → target]; if one exists, every node on
    it joins [target]'s class. Runs between drains (never mid-drain: a
    unification moves cursors the drain loop holds). *)
let try_collapse_cycle t ~(from : int) ~(target : int) =
  let from = canon_id t from and target = canon_id t target in
  if from <> target then
    match find_path t ~from ~target with
    | None -> ()
    | Some nodes ->
        t.cycles_found <- t.cycles_found + 1;
        List.iter
          (fun n -> unify_cells t (Cell.of_id target) (Cell.of_id n))
          nodes

(* ------------------------------------------------------------------ *)
(* Pseudo-topological drain order                                      *)
(* ------------------------------------------------------------------ *)

(** Recompute the drain priorities: a reverse postorder of the
    representative-level copy graph (cycles broken at the back edge), so
    sources rank before sinks and a fact tends to cross each cell after
    the cell's set has stopped growing this round. Roots are visited in
    copy-edge creation order ([copy_srcs]) and adjacency in list order —
    never in hashtable order, which varies with interned ids and would
    break byte-identical reruns. *)
let recompute_order t =
  t.order_edges <- Hashtbl.length t.copy_mem;
  Itbl.reset t.order;
  let visited = Itbl.create 256 in
  let post = ref [] in
  let adj n =
    match Itbl.find_opt t.copy_out n with Some l -> !l | None -> []
  in
  let dfs root =
    if not (Itbl.mem visited root) then begin
      Itbl.replace visited root ();
      let stack = ref [ (root, adj root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (n, []) :: rest ->
            post := n :: !post;
            stack := rest
        | (n, (did, _) :: more) :: rest ->
            stack := (n, more) :: rest;
            let d = canon_id t did in
            if not (Itbl.mem visited d) then begin
              Itbl.replace visited d ();
              stack := (d, adj d) :: !stack
            end
      done
    end
  in
  List.iter (fun sid -> dfs (canon_id t sid)) (List.rev !(t.copy_srcs));
  (* [post]'s head finished last — reverse postorder, rank 0 first *)
  List.iteri (fun i n -> Itbl.replace t.order n i) !post

(** Refresh the order once the copy graph outgrew the one it was
    computed for by half (new cells drain last until then). *)
let maybe_recompute_order t =
  let edges = Hashtbl.length t.copy_mem in
  if edges > t.order_edges + max 16 (t.order_edges / 2) then
    recompute_order t

let pointee_of (v : Cvar.t) : Ctype.t =
  match v.Cvar.vty with
  | Ctype.Ptr ty -> ty
  | Ctype.Array (ty, _) -> ty
  | _ -> Ctype.Void

(** Install the subset constraint [src ⊆ dst] between the two cells'
    classes; first installation pushes [src]'s current facts through the
    cell worklist. Intra-class constraints are tautologies and install
    nothing. *)
let ensure_copy t (dst : Cell.t) (src : Cell.t) =
  let sid = canon_id t (Cell.id src) and did = canon_id t (Cell.id dst) in
  if sid <> did then begin
    if t.track && t.cur_stmt >= 0 then record_copy t sid did;
    if not (Hashtbl.mem t.copy_mem (sid, did)) then begin
      Hashtbl.replace t.copy_mem (sid, did) ();
      let lst = copy_list t sid in
      lst := (did, ref 0) :: !lst;
      if Graph.pts_size t.graph src > 0 then push_cell t sid
    end
  end

(** Consume the facts of [c] that [stmt] has not seen yet (all of them on
    the statement's first visit, or after a dirty reset). Facts added by
    [f] itself are picked up in the same sweep. *)
let consume t (stmt : Nast.stmt) (c : Cell.t) (f : Cell.t -> unit) =
  pointer_subscribe t stmt c;
  match Graph.pts_ids t.graph c with
  | None -> ()
  | Some set ->
      let tbl = cursor_tbl t stmt in
      let cid = Cell.id c in
      let k = match Itbl.find_opt tbl cid with Some k -> k | None -> 0 in
      t.full_facts <- t.full_facts + Idset.cardinal set;
      let i = ref k in
      while !i < Idset.cardinal set do
        let w = Cell.of_id (Idset.get_ord set !i) in
        incr i;
        Itbl.replace tbl cid !i;
        t.delta_facts <- t.delta_facts + 1;
        t.facts_consumed <- t.facts_consumed + 1;
        f w
      done

(* ------------------------------------------------------------------ *)
(* Rule application                                                    *)
(* ------------------------------------------------------------------ *)

let process t (stmt : Nast.stmt) =
  let module S = (val t.strategy : Strategy.S) in
  let delta = is_delta t in
  (* a dirty statement starts over: its subscribed objects gained new
     fact-bearing cells, so its graph-dependent resolves must re-run *)
  if delta && Itbl.mem t.dirty stmt.Nast.id then begin
    Itbl.remove t.dirty stmt.Nast.id;
    match Itbl.find_opt t.cursors stmt.Nast.id with
    | Some tbl -> Itbl.reset tbl
    | None -> ()
  end;
  let norm v p = S.normalize t.ctx v p in
  (* iterate the facts of pointer cell [c] this statement reads: the full
     set under the naive engine (re-read every visit), the unseen suffix
     under the delta engines *)
  let foreach_fact (c : Cell.t) (f : Cell.t -> unit) =
    if delta then consume t stmt c f
    else begin
      let s = Graph.pts t.graph c in
      let n = Cell.Set.cardinal s in
      t.facts_consumed <- t.facts_consumed + n;
      t.delta_facts <- t.delta_facts + n;
      t.full_facts <- t.full_facts + n;
      Cell.Set.iter f s
    end
  in
  (* naive: transfer every fact of each source cell to the paired
     destination now, and re-run when the source object grows.
     delta: install the pair as a persistent copy edge — propagation
     moves the facts (current and future) exactly once each. *)
  let transfer pairs =
    if delta then List.iter (fun (cd, cs) -> ensure_copy t cd cs) pairs
    else
      List.iter
        (fun ((cd : Cell.t), (cs : Cell.t)) ->
          subscribe t stmt cs.Cell.base;
          let s = Graph.pts t.graph cs in
          let n = Cell.Set.cardinal s in
          t.facts_consumed <- t.facts_consumed + n;
          t.delta_facts <- t.delta_facts + n;
          t.full_facts <- t.full_facts + n;
          Cell.Set.iter (fun w -> add_edge t cd w) s)
        pairs
  in
  (* Run [resolve] and feed its pairs to [transfer]. The source OBJECT is
     subscribed before resolving, even when it yields no pairs: a
     graph-dependent resolve (Offsets pairs only fact-bearing source
     offsets) that runs while the source object is still fact-free must
     re-run once the first fact lands, or those pairs are lost for good.
     Under the naive engine the subscription is unconditional (its only
     re-run trigger is object growth); under the delta engines only
     [graph_resolve] instances need it — copy edges carry future facts
     for pair sets that are a pure function of the types. *)
  let resolve_into (dst : Cell.t) (src : Cell.t) (tau : Ctype.t) =
    if (not delta) || S.graph_resolve then subscribe t stmt src.Cell.base;
    transfer (S.resolve t.ctx t.graph dst src tau)
  in
  (* a virtual copy [dst = src] with declared type τ = dst's type *)
  let virtual_copy (dst : Cvar.t) (src : Cvar.t) =
    if not delta then subscribe t stmt src;
    resolve_into (norm dst []) (norm src []) dst.Cvar.vty
  in
  let bind_call (call : Nast.call) (fname : string) =
    match Hashtbl.find_opt t.funcs fname with
    | Some f ->
        (* under the summary schedule, a (call site, callee) binding is
           one instantiation of the callee's parameterized summary —
           counted once, however many visits re-derive it *)
        (if t.engine = `Summary then
           let key = (stmt.Nast.id, fname) in
           if not (Hashtbl.mem t.inst_mem key) then begin
             Hashtbl.replace t.inst_mem key ();
             t.summary_instantiations <- t.summary_instantiations + 1
           end);
        (* actuals into formals, extras into the vararg blob *)
        let rec bind params args =
          match (params, args) with
          | p :: ps, a :: as_ ->
              virtual_copy p a;
              bind ps as_
          | [], extras -> (
              match f.Nast.fvararg with
              | Some va -> List.iter (fun a -> virtual_copy va a) extras
              | None -> ())
          | _ :: _, [] -> ()
        in
        bind f.Nast.fparams call.Nast.cargs;
        (match (call.Nast.cret, f.Nast.fret) with
        | Some dst, Some src -> virtual_copy dst src
        | _ -> ())
    | None -> (
        match Summaries.find fname with
        | Some { Summaries.effects; _ } ->
            let operand_var = function
              | Summaries.Arg i -> List.nth_opt call.Nast.cargs i
              | Summaries.Ret -> call.Nast.cret
            in
            List.iter
              (fun eff ->
                match eff with
                | Summaries.Alloc _ | Summaries.Static_result _ ->
                    () (* materialized during lowering *)
                | Summaries.Ret_is op -> (
                    match (call.Nast.cret, operand_var op) with
                    | Some dst, Some src -> virtual_copy dst src
                    | _ -> ())
                | Summaries.Ret_points_into i -> (
                    match (call.Nast.cret, List.nth_opt call.Nast.cargs i) with
                    | Some dst, Some arg ->
                        if not delta then subscribe t stmt arg;
                        foreach_fact (norm arg []) (fun (c : Cell.t) ->
                            List.iter
                              (fun w -> add_edge t (norm dst []) w)
                              (S.all_cells t.ctx c.Cell.base))
                    | _ -> ())
                | Summaries.Deep_copy (a, b) -> (
                    match (operand_var a, operand_var b) with
                    | Some va, Some vb ->
                        if not delta then begin
                          subscribe t stmt va;
                          subscribe t stmt vb
                        end;
                        let pair (ca : Cell.t) (cb : Cell.t) =
                          resolve_into ca cb cb.Cell.base.Cvar.vty
                        in
                        foreach_fact (norm va []) (fun ca ->
                            Cell.Set.iter
                              (fun cb -> pair ca cb)
                              (Graph.pts t.graph (norm vb [])));
                        (* the cross product needs both deltas: new
                           sources × all destinations too *)
                        if delta then
                          foreach_fact (norm vb []) (fun cb ->
                              Cell.Set.iter
                                (fun ca -> pair ca cb)
                                (Graph.pts t.graph (norm va [])))
                    | _ -> ())
                | Summaries.Store_through (i, op) -> (
                    match (List.nth_opt call.Nast.cargs i, operand_var op) with
                    | Some parg, Some src ->
                        if not delta then begin
                          subscribe t stmt parg;
                          subscribe t stmt src
                        end;
                        let tau = pointee_of parg in
                        foreach_fact (norm parg []) (fun c ->
                            resolve_into c (norm src []) tau)
                    | _ -> ())
                | Summaries.Invoke (i, ops) -> (
                    match List.nth_opt call.Nast.cargs i with
                    | Some fp ->
                        if not delta then subscribe t stmt fp;
                        foreach_fact (norm fp []) (fun (c : Cell.t) ->
                            match c.Cell.base.Cvar.vkind with
                            | Cvar.Funval g -> (
                                match Hashtbl.find_opt t.funcs g with
                                | Some callee ->
                                    let actuals =
                                      List.filter_map operand_var ops
                                    in
                                    let rec bind params args =
                                      match (params, args) with
                                      | p :: ps, a :: as_ ->
                                          virtual_copy p a;
                                          bind ps as_
                                      | _ -> ()
                                    in
                                    bind callee.Nast.fparams actuals
                                | None -> ())
                            | _ -> ())
                    | None -> ()))
              effects
        | None -> record_extern t fname)
  in
  match stmt.Nast.kind with
  | Nast.Addr (s, obj, beta) ->
      (* Rule 1: s = &t.β *)
      add_edge t (norm s []) (norm obj beta)
  | Nast.Addr_deref (s, p, alpha) ->
      (* Rule 2: s = &( *p).α — lookup runs once per (new) target *)
      if not delta then subscribe t stmt p;
      let tau_p = pointee_of p in
      foreach_fact (norm p []) (fun c ->
          List.iter
            (fun c' -> add_edge t (norm s []) c')
            (S.lookup t.ctx tau_p alpha c))
  | Nast.Copy (s, obj, beta) ->
      (* Rule 3: s = t.β *)
      if not delta then subscribe t stmt obj;
      resolve_into (norm s []) (norm obj beta) s.Cvar.vty
  | Nast.Load (s, q) ->
      (* Rule 4: s = *q — resolve runs once per (new) target of q *)
      if not delta then subscribe t stmt q;
      foreach_fact (norm q []) (fun c -> resolve_into (norm s []) c s.Cvar.vty)
  | Nast.Store (p, v) ->
      (* Rule 5: *p = t *)
      if not delta then begin
        subscribe t stmt p;
        subscribe t stmt v
      end;
      let tau_p = pointee_of p in
      foreach_fact (norm p []) (fun c -> resolve_into c (norm v []) tau_p)
  | Nast.Arith (s, v) -> (
      if not delta then subscribe t stmt v;
      let spread (c : Cell.t) =
        List.iter
          (fun w -> add_edge t (norm s []) w)
          (S.all_cells t.ctx c.Cell.base)
      in
      match t.arith_mode with
      | `Spread ->
          (* Assumption 1: the result may point to any cell of the
             objects [v] points into *)
          foreach_fact (norm v []) spread
      | `Stride ->
          (* pointers walking an array stay on the representative
             element; anything else spreads as under Assumption 1 *)
          foreach_fact (norm v []) (fun (c : Cell.t) ->
              if S.in_array t.ctx c then add_edge t (norm s []) c
              else spread c)
      | `Unknown ->
          (* pessimistic: the result is a corrupted-pointer marker *)
          foreach_fact (norm v []) (fun _ ->
              add_edge t (norm s []) (Cell.whole t.unknown_obj))
      | `Copy ->
          if delta then ensure_copy t (norm s []) (norm v [])
          else foreach_fact (norm v []) (fun w -> add_edge t (norm s []) w))
  | Nast.Call call -> (
      match call.Nast.cfn with
      | Nast.Direct n -> bind_call call n
      | Nast.Indirect fp ->
          if not delta then subscribe t stmt fp;
          foreach_fact (norm fp []) (fun (c : Cell.t) ->
              match c.Cell.base.Cvar.vkind with
              | Cvar.Funval n -> bind_call call n
              | _ -> ()))

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

(** Step and time budgets, checked once per worklist statement (time is
    sampled sparsely — a clock read every statement would dominate small
    runs). *)
let check_step_budgets t =
  let b = t.budget in
  if Budget.over_steps b then begin
    Budget.trip_steps b;
    match b.Budget.limits.Budget.max_steps with
    | Some n -> degrade_all t ~reason:(Budget.Steps n)
    | None -> ()
  end;
  if Budget.steps b land 255 = 0 && Budget.over_time b then begin
    Budget.trip_time b;
    match b.Budget.limits.Budget.timeout_s with
    | Some s -> degrade_all t ~reason:(Budget.Timeout s)
    | None -> ()
  end

let check_drain_timeout t =
  if Budget.over_time t.budget then begin
    Budget.trip_time t.budget;
    match t.budget.Budget.limits.Budget.timeout_s with
    | Some s -> degrade_all t ~reason:(Budget.Timeout s)
    | None -> ()
  end

(** Drain the cell worklist in pseudo-topological order: push every
    unpropagated fact along its class's copy edges. Monotone (only
    [add_edge]/[union_pts]) and cursor-driven, so each fact crosses each
    edge once — this is where the delta engines move facts that the
    naive engine re-reads statement-side. A first drain of an edge on an
    un-degraded run takes the bulk path: one {!Graph.union_pts} merge
    pass instead of per-fact insertions. Drains that move facts but add
    none are the wasted work cycle elimination exists to remove; under
    [`Delta], a wasted drain onto an already-equal set triggers the
    lazy cycle search (after the cell's drain completes — a unification
    moves the cursors the drain loop holds). *)
let propagate_seq t =
  if is_delta t then begin
    maybe_recompute_order t;
    let copied = ref 0 in
    while not (Pq.is_empty t.cell_pq) do
      let sid0 = Pq.pop t.cell_pq in
      (* clear the marker before working: pushes triggered mid-drain must
         be able to re-queue this cell *)
      Itbl.remove t.in_cell_wl sid0;
      let sid = canon_id t sid0 in
      (* an entry whose cell was unified away is stale: the survivor was
         pushed separately by [unify_cells] *)
      if sid = sid0 then begin
        let lcd_pending = ref [] in
        (match Itbl.find_opt t.copy_out sid with
        | None -> ()
        | Some lst -> (
            match Graph.pts_ids t.graph (Cell.of_id sid) with
            | None -> ()
            | Some set ->
                List.iter
                  (fun (did, cur) ->
                    let dc = Graph.canon t.graph (Cell.of_id did) in
                    let dcid = Cell.id dc in
                    if dcid <> sid && !cur < Idset.cardinal set then begin
                      let moved0 = !cur in
                      let grew =
                        if moved0 = 0 && pristine t then begin
                          (* bulk first drain: one merge pass, with a
                             capacity hint when the destination set is
                             created *)
                          let total = Idset.cardinal set in
                          let added, newly =
                            Graph.union_pts t.graph ~dst:dc
                              ~src:(Cell.of_id sid)
                          in
                          cur := total;
                          t.facts_consumed <- t.facts_consumed + total;
                          copied := !copied + total;
                          if added > 0 then begin
                            push_cell t dcid;
                            (match Itbl.find_opt t.pointer_subs dcid with
                            | Some l -> List.iter (enqueue t) !l
                            | None -> ());
                            List.iter (notify_new_source t) newly;
                            check_cell_budgets t dc
                          end;
                          if !copied land 4095 = 0 then
                            check_drain_timeout t;
                          added > 0
                        end
                        else begin
                          let before = Graph.pts_size t.graph dc in
                          while !cur < Idset.cardinal set do
                            let w = Cell.of_id (Idset.get_ord set !cur) in
                            incr cur;
                            t.facts_consumed <- t.facts_consumed + 1;
                            incr copied;
                            (* time budget, sampled: a long drain between
                               two statements must not escape the
                               timeout *)
                            if !copied land 4095 = 0 then
                              check_drain_timeout t;
                            add_edge t (Cell.of_id did) w
                          done;
                          Graph.pts_size t.graph dc > before
                        end
                      in
                      if not grew then begin
                        t.wasted_props <- t.wasted_props + 1;
                        (* the sets are equal and the drain moved
                           nothing new: the lazy-cycle-detection
                           trigger *)
                        if
                          cycles_on t
                          && Idset.cardinal set = Graph.pts_size t.graph dc
                          && not (Hashtbl.mem t.lcd_done (sid, dcid))
                        then begin
                          Hashtbl.replace t.lcd_done (sid, dcid) ();
                          lcd_pending := dcid :: !lcd_pending
                        end
                      end
                    end)
                  !lst));
        List.iter
          (fun dcid -> try_collapse_cycle t ~from:dcid ~target:sid)
          (List.rev !lcd_pending)
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Domain-parallel drain (the [`Delta_par] engine)                     *)
(* ------------------------------------------------------------------ *)

(* The [`Delta_par n] engine parallelizes the copy-edge drain — the
   delta engine's dominant cost — over OCaml 5 domains, leaving
   statement processing sequential. A drain *phase* partitions the
   representative-level copy graph into SCC-closed *regions* (Tarjan
   over the same deterministic root order [recompute_order] uses, with
   the condensation's topological order cut into contiguous blocks), so
   no subset cycle ever spans two regions. The phase then alternates:

   - a parallel *round*: each active region is claimed by exactly one
     domain (an [Atomic] cursor over the active list; claims off the
     region's home domain count as [par_steals]) and drained with a
     region-local worklist in the usual pseudo-topological priority
     order. During a round every solver table is structurally frozen —
     the only mutation is growth of [Idset]s owned by the claiming
     domain, so domains never race: intra-region edges write the
     destination set directly, while work that would mutate shared
     structure is buffered region-locally — cross-region slices into a
     per-region outbox, first facts for set-less destinations, consumer
     wakes, cell-budget charges, and cycle candidates;

   - a sequential frontier *gap* ([par_frontier_rounds] counts them):
     fold the regions' counters, apply first facts through the ordinary
     [add_edge] path, wake cursor consumers, charge cell budgets, run
     deferred lazy cycle detection (unification is gap-only — legal
     because cycles are intra-region, cheap because it is rare), and
     route outboxes to the consuming regions' inboxes, which their
     owners drain at the start of the next round.

   The phase ends when every region worklist, inbox, and the global
   cell queue are empty. Any gap-side degradation bumps [delta_gen] via
   [reset_deltas]; the phase notices and aborts ([Phase_reset]) — the
   re-enqueued statements rebuild everything over the coarser cells,
   and subsequent drains run sequentially ([pristine] is false).

   Byte-identity with [`Delta] follows from confluence: the rules are
   monotone over finite lattices, so the least fixpoint — and with it
   every stats-free report field — is schedule-independent; only the
   profiling counters differ. *)

type region = {
  ridx : int;
  rpq : Pq.t;  (** region-local cell worklist *)
  rin_wl : unit Itbl.t;
  mutable rinbox : (int * int array) list;
      (** (dst cell id, fact ids) delivered by the last gap, newest
          first; drained by the claiming domain at round start *)
  mutable routbox : (int * int array) list;
      (** cross-region slices produced this round, newest first *)
  mutable rfirst : (int * int array) list;
      (** slices for destinations that had no set yet: creating the
          binding mutates shared tables, so the gap applies them *)
  mutable rgrew : int list;  (** destination classes that gained facts *)
  rgrew_mem : unit Itbl.t;
  mutable rlcd : (int * int) list;
      (** (src, dst) lazy-cycle-detection candidates for the gap *)
  mutable rfacts : int;
  mutable rwasted : int;
  mutable redges : int;  (** member-expanded edge-count delta *)
}

exception Phase_reset

(** Partition the representative-level copy graph into at most
    [nregions] SCC-closed regions: iterative Tarjan from the same
    deterministic roots as {!recompute_order} emits the SCCs in reverse
    topological order of the condensation; reversing gives a
    topological SCC sequence, which is cut into contiguous blocks of
    roughly equal node count. Returns the (representative id → region)
    map and the number of regions actually formed. *)
let build_partition t ~(nregions : int) : int Itbl.t * int =
  let adj n =
    match Itbl.find_opt t.copy_out n with
    | Some l -> List.map (fun (did, _) -> canon_id t did) !l
    | None -> []
  in
  let roots = List.map (fun sid -> canon_id t sid) (List.rev !(t.copy_srcs)) in
  let sccs = Tarjan.sccs ~roots ~succs:adj in
  let total = List.fold_left (fun n scc -> n + List.length scc) 0 sccs in
  (* the SCC list is topological (sources first): pack into contiguous
     blocks so cross-region edges point mostly forward *)
  let region_of = Itbl.create 256 in
  let target = max 1 ((total + nregions - 1) / nregions) in
  let cur = ref 0 and fill = ref 0 in
  List.iter
    (fun scc ->
      if !fill >= target && !cur < nregions - 1 then begin
        incr cur;
        fill := 0
      end;
      List.iter (fun v -> Itbl.replace region_of v !cur) scc;
      fill := !fill + List.length scc)
    sccs;
  (region_of, !cur + 1)

let region_push t (r : region) (cid : int) =
  if Itbl.mem t.copy_out cid && not (Itbl.mem r.rin_wl cid) then begin
    Itbl.replace r.rin_wl cid ();
    Pq.push r.rpq ~prio:(rank t cid) cid
  end

let region_grew (r : region) (dcid : int) =
  if not (Itbl.mem r.rgrew_mem dcid) then begin
    Itbl.replace r.rgrew_mem dcid ();
    r.rgrew <- dcid :: r.rgrew
  end

(** Apply a materialized fact slice to [did]'s class, which the calling
    domain owns this round. [lcd = Some (sid, src_card)] when the slice
    came over an intra-region copy edge from class [sid] whose set
    holds [src_card] facts — the wasted-drain-onto-equal-set trigger
    only fires for intra-region edges (a cross-region edge cannot close
    a cycle, regions being SCC-closed). *)
let par_apply t (r : region) ~(lcd : (int * int) option) (did : int)
    (facts : int array) =
  let dcid = Graph.canon_id_ro t.graph did in
  match Graph.pts_ids_of_rid t.graph dcid with
  | None ->
      (* no set yet: creating the binding mutates shared tables — the
         gap applies it through the ordinary [add_edge] path *)
      r.rfirst <- (did, facts) :: r.rfirst;
      r.rfacts <- r.rfacts + Array.length facts
  | Some dset ->
      let before = Idset.cardinal dset in
      Array.iter (fun w -> ignore (Idset.add dset w)) facts;
      let added = Idset.cardinal dset - before in
      r.rfacts <- r.rfacts + Array.length facts;
      if added > 0 then begin
        r.redges <- r.redges + (added * Graph.class_size_of_rid t.graph dcid);
        region_push t r dcid;
        region_grew r dcid
      end
      else begin
        r.rwasted <- r.rwasted + 1;
        match lcd with
        | Some (sid, src_card)
          when cycles_on t && src_card = Idset.cardinal dset ->
            r.rlcd <- (sid, dcid) :: r.rlcd
        | _ -> ()
      end

(** Drain one source cell's copy edges inside a round. Reads resolve
    through the non-compressing union-find view; the only sets touched
    are the region's own (intra-region destinations) — everything else
    is buffered. *)
let par_drain_cell t ~(region_of : int Itbl.t) (r : region) (sid : int) =
  match Itbl.find_opt t.copy_out sid with
  | None -> ()
  | Some lst -> (
      match Graph.pts_ids_of_rid t.graph sid with
      | None -> ()
      | Some set ->
          List.iter
            (fun (did, cur) ->
              let dcid = Graph.canon_id_ro t.graph did in
              let total = Idset.cardinal set in
              if dcid <> sid && !cur < total then begin
                let from = !cur in
                cur := total;
                let home = Itbl.find_opt region_of dcid in
                if home = Some r.ridx then begin
                  match Graph.pts_ids_of_rid t.graph dcid with
                  | Some dset when from = 0 ->
                      (* bulk first drain: one merge pass, as in the
                         sequential engine's pristine fast path *)
                      let added = Idset.union_into dset set in
                      r.rfacts <- r.rfacts + total;
                      if added > 0 then begin
                        r.redges <-
                          r.redges
                          + (added * Graph.class_size_of_rid t.graph dcid);
                        region_push t r dcid;
                        region_grew r dcid
                      end
                      else begin
                        r.rwasted <- r.rwasted + 1;
                        if cycles_on t && total = Idset.cardinal dset then
                          r.rlcd <- (sid, dcid) :: r.rlcd
                      end
                  | Some _ | None ->
                      let facts =
                        Array.init (total - from) (fun i ->
                            Idset.get_ord set (from + i))
                      in
                      par_apply t r ~lcd:(Some (sid, total)) did facts
                end
                else begin
                  (* cross-region: ship a materialized slice (the live
                     set's internal array may be swapped by its owner) *)
                  let facts =
                    Array.init (total - from) (fun i ->
                        Idset.get_ord set (from + i))
                  in
                  r.routbox <- (did, facts) :: r.routbox;
                  r.rfacts <- r.rfacts + Array.length facts
                end
              end)
            !lst)

(** One region's share of a round: drain the inbox the last gap
    delivered, then the region worklist to empty. *)
let par_run_region t ~(region_of : int Itbl.t) (r : region) =
  let inbox = List.rev r.rinbox in
  r.rinbox <- [];
  List.iter (fun (did, facts) -> par_apply t r ~lcd:None did facts) inbox;
  let more = ref true in
  while !more do
    match Pq.pop_opt r.rpq with
    | None -> more := false
    | Some sid0 ->
        Itbl.remove r.rin_wl sid0;
        let sid = Graph.canon_id_ro t.graph sid0 in
        (* stale entries (cell unified away in a gap) are skipped: the
           survivor was pushed separately by [unify_cells] *)
        if sid = sid0 then par_drain_cell t ~region_of r sid
  done

(** The sequential frontier gap: all structure-mutating work the round
    buffered, applied in region order (deterministic — region contents
    are a pure function of the phase's inputs, whichever domain ran
    them). Raises {!Phase_reset} if any of it degrades the solver. *)
let par_gap t (regions : region array) (region_of : int Itbl.t)
    ~(gen0 : int) =
  let check_gen () = if t.delta_gen <> gen0 then raise Phase_reset in
  Array.iter
    (fun r ->
      t.facts_consumed <- t.facts_consumed + r.rfacts;
      t.wasted_props <- t.wasted_props + r.rwasted;
      Graph.bump_edge_count t.graph r.redges;
      r.rfacts <- 0;
      r.rwasted <- 0;
      r.redges <- 0)
    regions;
  (* first facts: the ordinary [add_edge] path creates the binding,
     indexes the cells, wakes subscribers, and charges cell budgets *)
  Array.iter
    (fun r ->
      let firsts = List.rev r.rfirst in
      r.rfirst <- [];
      List.iter
        (fun (did, facts) ->
          let dc = Cell.of_id did in
          Array.iter
            (fun w ->
              add_edge t dc (Cell.of_id w);
              check_gen ())
            facts)
        firsts)
    regions;
  (* wake cursor consumers of every class that grew, and charge the
     cell budgets the round deferred *)
  Array.iter
    (fun r ->
      let grew = List.rev r.rgrew in
      r.rgrew <- [];
      Itbl.reset r.rgrew_mem;
      List.iter
        (fun dcid0 ->
          let dcid = canon_id t dcid0 in
          (match Itbl.find_opt t.pointer_subs dcid with
          | Some l -> List.iter (enqueue t) !l
          | None -> ());
          check_cell_budgets t (Cell.of_id dcid);
          check_gen ())
        grew)
    regions;
  (* deferred lazy cycle detection — unification happens only here *)
  Array.iter
    (fun r ->
      let lcd = List.rev r.rlcd in
      r.rlcd <- [];
      List.iter
        (fun (sid, dcid) ->
          if not (Hashtbl.mem t.lcd_done (sid, dcid)) then begin
            Hashtbl.replace t.lcd_done (sid, dcid) ();
            try_collapse_cycle t ~from:dcid ~target:sid;
            check_gen ()
          end)
        lcd)
    regions;
  (* route cross-region slices to the consuming region's inbox *)
  Array.iter
    (fun r ->
      let out = List.rev r.routbox in
      r.routbox <- [];
      List.iter
        (fun (did, facts) ->
          match Itbl.find_opt region_of (canon_id t did) with
          | Some g ->
              let rg = regions.(g) in
              rg.rinbox <- (did, facts) :: rg.rinbox
          | None ->
              (* destination outside the frozen partition: apply here *)
              let dc = Cell.of_id did in
              Array.iter
                (fun w ->
                  add_edge t dc (Cell.of_id w);
                  check_gen ())
                facts)
        out)
    regions;
  check_drain_timeout t;
  check_gen ()

(** Below this many queued cells a parallel phase cannot pay for its
    partition and spawns; the sequential drain runs instead. *)
let par_min_queue = 32

(** How many regions each domain gets on average: enough slack that a
    straggler region does not idle the other domains. *)
let par_regions_per_domain = 4

let propagate_par t (nd : int) =
  maybe_recompute_order t;
  let region_of, nregions =
    build_partition t ~nregions:(nd * par_regions_per_domain)
  in
  let regions =
    Array.init nregions (fun i ->
        {
          ridx = i;
          rpq = Pq.create ();
          rin_wl = Itbl.create 64;
          rinbox = [];
          routbox = [];
          rfirst = [];
          rgrew = [];
          rgrew_mem = Itbl.create 64;
          rlcd = [];
          rfacts = 0;
          rwasted = 0;
          redges = 0;
        })
  in
  let gen0 = t.delta_gen in
  let steals = Array.make nd 0 in
  (* Seed the regions from the global queue; gap-side pushes land on
     the global queue too, so every round starts by re-draining it. *)
  let drain_global () =
    let more = ref true in
    while !more do
      match Pq.pop_opt t.cell_pq with
      | None -> more := false
      | Some cid0 ->
          Itbl.remove t.in_cell_wl cid0;
          let cid = canon_id t cid0 in
          if cid = cid0 then begin
            match Itbl.find_opt region_of cid with
            | Some g -> region_push t regions.(g) cid
            | None ->
                (* a source outside the frozen partition (cannot happen
                   while the copy graph is phase-frozen; defensive):
                   put it back and let the sequential drain take over *)
                push_cell t cid;
                raise Phase_reset
          end
    done
  in
  try
    let live = ref true in
    while !live do
      drain_global ();
      let active =
        Array.of_list
          (List.filter
             (fun r -> (not (Pq.is_empty r.rpq)) || r.rinbox <> [])
             (Array.to_list regions))
      in
      if Array.length active = 0 then live := false
      else begin
        t.par_frontier_rounds <- t.par_frontier_rounds + 1;
        let n_active = Array.length active in
        let next = Atomic.make 0 in
        let worker k =
          let more = ref true in
          while !more do
            let i = Atomic.fetch_and_add next 1 in
            if i >= n_active then more := false
            else begin
              let r = active.(i) in
              if r.ridx mod nd <> k then steals.(k) <- steals.(k) + 1;
              par_run_region t ~region_of r
            end
          done
        in
        let extra = min nd n_active - 1 in
        let doms =
          Array.init extra (fun j -> Domain.spawn (fun () -> worker (j + 1)))
        in
        worker 0;
        Array.iter Domain.join doms;
        par_gap t regions region_of ~gen0
      end
    done;
    t.par_steals <- t.par_steals + Array.fold_left ( + ) 0 steals
  with Phase_reset ->
    (* a gap-side degradation reset the delta state this phase was
       built on: drop the region scaffolding — the re-enqueued
       statements re-derive everything over the coarser cells, and
       later drains run sequentially (the solver is no longer pristine) *)
    t.par_steals <- t.par_steals + Array.fold_left ( + ) 0 steals

let propagate t =
  match t.engine with
  | `Naive | `Delta | `Delta_nocycle | `Summary -> propagate_seq t
  | `Delta_par nd ->
      (* parallel phases need pristine cells (round-side applies skip
         the degradation redirect) and enough queued work to amortize
         the partition and domain spawns *)
      if nd > 1 && pristine t && Pq.length t.cell_pq >= par_min_queue then
        propagate_par t nd
      else propagate_seq t

(** Drain the worklist to a fixpoint from whatever is queued — the
    warm-start entry point: nothing is re-enqueued, so a resumed solver
    only revisits statements some new fact actually woke. *)
let visit_stmt t (stmt : Nast.stmt) =
  (* clear the dedup marker before dispatch: a statement that
     re-enqueues itself mid-visit (e.g. [p = *p] growing its own
     set) must land back in the queue, not be silently dropped *)
  Hashtbl.remove t.in_queue stmt.Nast.id;
  t.rounds <- t.rounds + 1;
  Budget.step t.budget;
  check_step_budgets t;
  let facts0 = t.facts_consumed in
  let edges0 = Graph.edge_count t.graph in
  let copies0 = Hashtbl.length t.copy_mem in
  t.cur_stmt <- stmt.Nast.id;
  process t stmt;
  t.cur_stmt <- -1;
  (* a visit that read facts but derived nothing (no graph edge,
     no copy edge) re-did work some earlier visit already did *)
  if
    t.facts_consumed > facts0
    && Graph.edge_count t.graph = edges0
    && Hashtbl.length t.copy_mem = copies0
  then t.wasted_props <- t.wasted_props + 1

let resume t : unit =
  Budget.start t.budget;
  match t.engine with
  | `Delta_par nd when nd > 1 ->
      (* alternate statement batches with drain phases: the sequential
         engines interleave one statement per drain, which keeps the
         cell queue too narrow to split across domains — batching all
         ready statements first hands [propagate] the whole cascade.
         The fixpoint is unaffected (the rules are monotone and
         confluent); only the visit schedule differs. *)
      let live = ref true in
      while !live do
        match Queue.take_opt t.queue with
        | Some stmt -> visit_stmt t stmt
        | None ->
            if Pq.is_empty t.cell_pq then live := false else propagate t
      done
  | _ ->
      let rec loop () =
        propagate t;
        match Queue.take_opt t.queue with
        | None -> if not (Pq.is_empty t.cell_pq) then loop ()
        | Some stmt ->
            visit_stmt t stmt;
            loop ()
      in
      loop ()

(* ------------------------------------------------------------------ *)
(* Bottom-up summary schedule (the [`Summary] engine)                  *)
(* ------------------------------------------------------------------ *)

(** Defined functions an indirect call in [f] currently resolves to —
    the function-pointer-induced call edges, read off the fixpoint so
    far. Sorted, so the SCC-boundary stabilization loop compares sets. *)
let fp_callees t (f : Nast.func) : string list =
  let module S = (val t.strategy : Strategy.S) in
  List.fold_left
    (fun acc (s : Nast.stmt) ->
      match s.Nast.kind with
      | Nast.Call { Nast.cfn = Nast.Indirect fp; _ } ->
          Cell.Set.fold
            (fun (w : Cell.t) acc ->
              match w.Cell.base.Cvar.vkind with
              | Cvar.Funval n when Hashtbl.mem t.funcs n -> n :: acc
              | _ -> acc)
            (Graph.pts t.graph (S.normalize t.ctx fp []))
            acc
      | _ -> acc)
    [] f.Nast.fstmts
  |> List.sort_uniq compare

(** The [`Summary] schedule: condense the direct-call graph into an
    SCC-DAG with {!Tarjan} and solve it bottom-up — each SCC to
    fixpoint, iterating until the function-pointer-induced callee set at
    its boundary stabilizes — then close with a whole-program pass.

    Per SCC, each member function is first offered to [summary_probe]
    (the store hook): a hit means its recorded constraints were injected
    and its statements are not enqueued in this pass; a miss enqueues
    them. After the SCC stabilizes — and before any caller is solved —
    [summary_commit] extracts each missed member's attributed
    constraints, which at that moment are a pure function of its body,
    its transitive callees, and the configuration (callers and global
    initializers have contributed nothing yet).

    The closing pass enqueues every statement (the global initializers
    for the first time) and resumes to the global fixpoint. It is what
    makes the schedule unconditionally exact: cursors make re-visits
    cheap for work the bottom-up pass already did, and any constraint an
    injected summary did not carry is re-derived. The rules are monotone
    and confluent, so this schedule reaches the same least fixpoint —
    and the same stats-free report, byte for byte — as the
    whole-program engines. *)
let solve_summary t =
  let funcs = Array.of_list t.prog.Nast.pfuncs in
  let index = Hashtbl.create 32 in
  Array.iteri
    (fun i (f : Nast.func) -> Hashtbl.replace index f.Nast.fname i)
    funcs;
  let succs i =
    List.sort_uniq compare
      (List.filter_map
         (fun (s : Nast.stmt) ->
           match s.Nast.kind with
           | Nast.Call { Nast.cfn = Nast.Direct n; _ } ->
               Hashtbl.find_opt index n
           | _ -> None)
         funcs.(i).Nast.fstmts)
  in
  let roots = List.init (Array.length funcs) Fun.id in
  (* topological order puts callers first; reverse for bottom-up *)
  let bottom_up = List.rev (Tarjan.sccs ~roots ~succs) in
  t.summary_sccs <- List.length bottom_up;
  List.iter
    (fun scc ->
      let members = List.map (fun i -> funcs.(i)) scc in
      let missed =
        List.filter
          (fun (f : Nast.func) ->
            match t.summary_probe with
            | Some probe when probe f ->
                t.summary_hits <- t.summary_hits + 1;
                false
            | _ ->
                t.summary_recomputed <- t.summary_recomputed + 1;
                true)
          members
      in
      List.iter
        (fun (f : Nast.func) -> List.iter (enqueue t) f.Nast.fstmts)
        missed;
      (* solve the SCC, then iterate while the boundary's resolved
         callee set still grows: each new function-pointer target's
         bindings were installed by the re-woken call statements during
         the resume, which can resolve further targets *)
      let callees () =
        List.sort_uniq compare (List.concat_map (fp_callees t) members)
      in
      let rec stabilize prev =
        resume t;
        t.summary_scc_rounds <- t.summary_scc_rounds + 1;
        let now = callees () in
        if now <> prev then begin
          List.iter
            (fun (f : Nast.func) ->
              List.iter
                (fun (s : Nast.stmt) ->
                  match s.Nast.kind with
                  | Nast.Call { Nast.cfn = Nast.Indirect _; _ } ->
                      enqueue t s
                  | _ -> ())
                f.Nast.fstmts)
            members;
          stabilize now
        end
      in
      stabilize (callees ());
      match t.summary_commit with
      | Some commit -> List.iter commit missed
      | None -> ())
    bottom_up;
  (* closing whole-program pass: global initializers join, cache hits
     get their statements visited, and the fixpoint goes global *)
  List.iter (enqueue t) (Nast.all_stmts t.prog);
  resume t

(** Inject an externally derived points-to fact (a cached summary's
    direct edge) through the full [add_edge] path — consumers wake,
    drains queue, budgets charge — without attributing it to any
    statement. Callers must only inject facts that hold in the program's
    least fixpoint; a per-function summary recorded under the same body,
    callee, and configuration digests qualifies (it was derived from a
    subset of the contexts the full solve sees). *)
let inject_edge t (c : Cell.t) (w : Cell.t) =
  let saved = t.cur_stmt in
  t.cur_stmt <- -1;
  add_edge t c w;
  t.cur_stmt <- saved

(** Inject a subset constraint (a cached summary's copy edge), likewise
    unattributed. Constraints between cells that are equal or ordered in
    the least fixpoint leave it unchanged, which a replayed summary
    edge is. *)
let inject_copy t ~(dst : Cell.t) ~(src : Cell.t) =
  if is_delta t then begin
    let saved = t.cur_stmt in
    t.cur_stmt <- -1;
    ensure_copy t (redirect_cell t dst) (redirect_cell t src);
    t.cur_stmt <- saved
  end

let solve t : unit =
  match t.engine with
  | `Summary -> solve_summary t
  | _ ->
      List.iter (enqueue t) (Nast.all_stmts t.prog);
      resume t

(** Swap in a new program (the incremental engine's aligned edit),
    keeping the function table consistent. Does not enqueue anything. *)
let set_program t (prog : Nast.program) =
  t.prog <- prog;
  Hashtbl.reset t.funcs;
  List.iter (fun f -> Hashtbl.replace t.funcs f.Nast.fname f) prog.Nast.pfuncs

(** Analyze [prog] with [strategy]; returns the solver state at fixpoint. *)
let run ?layout ?arith ?budget ?engine ?track ~strategy (prog : Nast.program) :
    t =
  let t = create ?layout ?arith ?budget ?engine ?track ~strategy prog in
  solve t;
  t

(** Degradation events recorded during [solve], oldest first. *)
let degradations t : Budget.event list = Budget.events t.budget

let degraded t : bool = Budget.degraded t.budget
