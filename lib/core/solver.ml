(** The fixpoint solver: applies the paper's inference rules 1–5 (Figure 2)
    over a normalized program until no new points-to facts appear.

    The solver is generic in the strategy (any {!Strategy.S}); the rules
    below call the strategy's [normalize]/[lookup]/[resolve] exactly where
    Figure 2 does. Interprocedural behaviour is context-insensitive:
    parameter and return bindings are virtual copy assignments generated
    per discovered callee, with indirect callees taken from the function
    pointer's points-to set as it grows. Library calls use
    {!Norm.Summaries}.

    Worklist discipline: a statement is (re)processed when any object whose
    facts it reads gains an edge. Statements subscribe to objects
    dynamically (e.g. a [Load] subscribes to every object its pointer is
    found to point to).

    Resilience: the loop charges every processed statement against a
    {!Budget.t}. When a budget trips, the solver does not abort — it
    collapses the offending object(s) to a single cell (the
    Collapse-Always treatment applied per object), merges their edges,
    re-enqueues everything, and continues to a sound-but-coarser
    fixpoint. Collapsing is implemented by wrapping the strategy: every
    cell the base strategy produces for a collapsed object is redirected
    to that object's representative cell. *)

open Cfront
open Norm

module Itbl = Hashtbl.Make (Int)

type t = {
  ctx : Actx.t;
  graph : Graph.t;
  strategy : (module Strategy.S);
      (** the degradation-aware wrapper around [base_strategy] *)
  base_strategy : (module Strategy.S);
  budget : Budget.t;
  collapsed : unit Cvar.Tbl.t;  (** objects degraded to a single cell *)
  collapse_all : bool ref;
      (** set when a step/time/total budget trips: every object is
          treated as collapsed from then on *)
  prog : Nast.program;
  funcs : (string, Nast.func) Hashtbl.t;
  queue : Nast.stmt Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  subscribers : Nast.stmt list ref Cvar.Tbl.t;
  stmt_subs : Cvar.Set.t ref Itbl.t;  (** keyed by stmt id *)
  arith_mode : [ `Spread | `Copy | `Stride | `Unknown ];
      (** How pointer arithmetic is modelled:
          - [`Spread] — the paper's Assumption-1 rule: the result may
            point to any cell of the pointed-to object;
          - [`Stride] — Wilson–Lam refinement (Section 6): arithmetic on a
            pointer into an array stays on the representative element, and
            only non-array targets spread;
          - [`Unknown] — the pessimistic alternative the paper discusses
            under Complication 3: the result is a distinguished Unknown
            value, usable to flag potential misuses of memory;
          - [`Copy] — optimistic ablation: the result aliases the
            operand. *)
  unknown_obj : Cvar.t;
      (** the distinguished target of [`Unknown]-mode arithmetic *)
  mutable unknown_externs : string list;
  mutable rounds : int;
}

(* ------------------------------------------------------------------ *)
(* Per-object collapse: the degrading strategy wrapper                 *)
(* ------------------------------------------------------------------ *)

(** The representative cell of a collapsed object, preserving the
    strategy's selector kind: path-based cells collapse to the whole
    object, offset cells to offset 0. *)
let collapse_sel (c : Cell.t) : Cell.t =
  match c.Cell.sel with
  | Cell.Path [] | Cell.Off 0 -> c
  | Cell.Path _ -> Cell.whole c.Cell.base
  | Cell.Off _ -> Cell.v c.Cell.base (Cell.Off 0)

(** Wrap [base] so that every cell it produces for a collapsed object is
    redirected to that object's single representative cell — the
    Collapse-Always treatment applied per object. Sound because pointing
    at the representative stands for pointing anywhere in the object (the
    paper's Section 4.3.1 reading), and the solver merges the collapsed
    object's existing edges onto the representative when it collapses. *)
let degrading_strategy ~(collapsed : unit Cvar.Tbl.t)
    ~(collapse_all : bool ref) (module B : Strategy.S) : (module Strategy.S) =
  (module struct
    let name = B.name
    let id = B.id
    let portable = B.portable

    let is_collapsed (v : Cvar.t) = !collapse_all || Cvar.Tbl.mem collapsed v

    let redirect (c : Cell.t) : Cell.t =
      if is_collapsed c.Cell.base then collapse_sel c else c

    let normalize ctx v alpha = redirect (B.normalize ctx v alpha)

    let lookup ctx tau alpha target =
      Strategy.dedup_cells
        (List.map redirect (B.lookup ctx tau alpha (redirect target)))

    let resolve ctx graph dst src tau =
      let pairs = B.resolve ctx graph (redirect dst) (redirect src) tau in
      Strategy.dedup_pairs
        (List.map (fun (d, s) -> (redirect d, redirect s)) pairs)

    let all_cells ctx obj =
      if is_collapsed obj then [ redirect (B.normalize ctx obj []) ]
      else B.all_cells ctx obj

    let in_array = B.in_array

    let expand_for_metrics ctx c =
      let c = redirect c in
      if is_collapsed c.Cell.base then
        (* a collapsed target stands for the whole object: expand to all
           of its cells, mirroring Collapse-Always metrics accounting *)
        match B.all_cells ctx c.Cell.base with
        | [ only ] when Cell.equal only c -> B.expand_for_metrics ctx c
        | cells -> cells
      else B.expand_for_metrics ctx c
  end)

let create ?(layout = Layout.default) ?(arith = `Spread)
    ?(budget = Budget.unlimited) ~strategy (prog : Nast.program) : t =
  let funcs = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace funcs f.Nast.fname f) prog.Nast.pfuncs;
  let collapsed = Cvar.Tbl.create 16 in
  let collapse_all = ref false in
  {
    ctx = Actx.create ~layout ();
    graph = Graph.create ();
    strategy = degrading_strategy ~collapsed ~collapse_all strategy;
    base_strategy = strategy;
    budget = Budget.create ~limits:budget ();
    collapsed;
    collapse_all;
    prog;
    funcs;
    queue = Queue.create ();
    in_queue = Hashtbl.create 256;
    subscribers = Cvar.Tbl.create 128;
    stmt_subs = Itbl.create 256;
    arith_mode = arith;
    unknown_obj = Cvar.fresh ~name:"$unknown" ~ty:Ctype.Void ~kind:Cvar.Global;
    unknown_externs = [];
    rounds = 0;
  }

let enqueue t (s : Nast.stmt) =
  if not (Hashtbl.mem t.in_queue s.Nast.id) then begin
    Hashtbl.replace t.in_queue s.Nast.id ();
    Queue.add s t.queue
  end

(** Subscribe [stmt] to future facts on [obj]. *)
let subscribe t (stmt : Nast.stmt) (obj : Cvar.t) =
  let subs =
    match Itbl.find_opt t.stmt_subs stmt.Nast.id with
    | Some s -> s
    | None ->
        let s = ref Cvar.Set.empty in
        Itbl.replace t.stmt_subs stmt.Nast.id s;
        s
  in
  if not (Cvar.Set.mem obj !subs) then begin
    subs := Cvar.Set.add obj !subs;
    let lst =
      match Cvar.Tbl.find_opt t.subscribers obj with
      | Some l -> l
      | None ->
          let l = ref [] in
          Cvar.Tbl.replace t.subscribers obj l;
          l
    in
    lst := stmt :: !lst
  end

(* ------------------------------------------------------------------ *)
(* Degradation                                                         *)
(* ------------------------------------------------------------------ *)

let is_collapsed_obj t (v : Cvar.t) =
  !(t.collapse_all) || Cvar.Tbl.mem t.collapsed v

let redirect_cell t (c : Cell.t) : Cell.t =
  if is_collapsed_obj t c.Cell.base then collapse_sel c else c

(** Collapse [obj] to its representative cell: record the event, merge
    the edges its fine-grained cells carry onto the representative, and
    re-enqueue every statement so the fixpoint is re-established over the
    coarser cell space. Idempotent. *)
let collapse_object t ~(reason : Budget.reason) (obj : Cvar.t) =
  if not (Cvar.Tbl.mem t.collapsed obj) then begin
    Cvar.Tbl.replace t.collapsed obj ();
    Budget.record t.budget ~obj reason;
    List.iter
      (fun (c : Cell.t) ->
        let rep = collapse_sel c in
        if not (Cell.equal rep c) then begin
          Cell.Set.iter
            (fun w -> ignore (Graph.add_edge t.graph rep w))
            (Graph.pts t.graph c);
          Graph.remove_source t.graph c
        end)
      (Graph.cells_of_obj t.graph obj);
    List.iter (enqueue t) (Nast.all_stmts t.prog)
  end

(** Global degradation (step/time/total-cell budgets): collapse every
    object whose facts are spread over several cells, then treat all
    objects as collapsed from here on. The solver then continues to the
    Collapse-Always-shaped fixpoint, which terminates: the cell space is
    one cell per object and the transfer functions are monotone. *)
let degrade_all t ~(reason : Budget.reason) =
  let offenders =
    Graph.fold_objects t.graph
      (fun v cells acc ->
        if Cell.Set.cardinal cells > 1 && not (Cvar.Tbl.mem t.collapsed v)
        then v :: acc
        else acc)
      []
  in
  if offenders = [] then Budget.record t.budget reason
  else List.iter (fun obj -> collapse_object t ~reason obj) offenders;
  t.collapse_all := true;
  List.iter (enqueue t) (Nast.all_stmts t.prog)

(** Cell-count budgets, checked as edges land. *)
let check_cell_budgets t (src : Cell.t) =
  (match t.budget.Budget.limits.Budget.max_cells_per_object with
  | Some limit when not (is_collapsed_obj t src.Cell.base) ->
      if Graph.cell_count_of_obj t.graph src.Cell.base > limit then
        collapse_object t ~reason:(Budget.Object_cells limit) src.Cell.base
  | _ -> ());
  match t.budget.Budget.limits.Budget.max_total_cells with
  | Some limit
    when Budget.over_total t.budget
           ~total_cells:(Graph.source_cell_count t.graph) ->
      Budget.trip_total t.budget;
      degrade_all t ~reason:(Budget.Total_cells limit)
  | _ -> ()

let add_edge t (c : Cell.t) (w : Cell.t) =
  let c = redirect_cell t c and w = redirect_cell t w in
  if Graph.add_edge t.graph c w then begin
    (match Cvar.Tbl.find_opt t.subscribers c.Cell.base with
    | Some lst -> List.iter (enqueue t) !lst
    | None -> ());
    check_cell_budgets t c
  end

let pointee_of (v : Cvar.t) : Ctype.t =
  match v.Cvar.vty with
  | Ctype.Ptr ty -> ty
  | Ctype.Array (ty, _) -> ty
  | _ -> Ctype.Void

(* ------------------------------------------------------------------ *)
(* Rule application                                                    *)
(* ------------------------------------------------------------------ *)

let process t (stmt : Nast.stmt) =
  let module S = (val t.strategy : Strategy.S) in
  let norm v p = S.normalize t.ctx v p in
  let pts c = Graph.pts t.graph c in
  (* transfer every fact of each source cell to the paired destination *)
  let transfer stmt pairs =
    List.iter
      (fun ((cd : Cell.t), (cs : Cell.t)) ->
        subscribe t stmt cs.Cell.base;
        Cell.Set.iter (fun w -> add_edge t cd w) (pts cs))
      pairs
  in
  (* a virtual copy [dst = src] with declared type τ = dst's type *)
  let virtual_copy stmt (dst : Cvar.t) (src : Cvar.t) =
    subscribe t stmt src;
    let pairs =
      S.resolve t.ctx t.graph (norm dst []) (norm src []) dst.Cvar.vty
    in
    transfer stmt pairs
  in
  let bind_call stmt (call : Nast.call) (fname : string) =
    match Hashtbl.find_opt t.funcs fname with
    | Some f ->
        (* actuals into formals, extras into the vararg blob *)
        let rec bind params args =
          match (params, args) with
          | p :: ps, a :: as_ ->
              virtual_copy stmt p a;
              bind ps as_
          | [], extras -> (
              match f.Nast.fvararg with
              | Some va -> List.iter (fun a -> virtual_copy stmt va a) extras
              | None -> ())
          | _ :: _, [] -> ()
        in
        bind f.Nast.fparams call.Nast.cargs;
        (match (call.Nast.cret, f.Nast.fret) with
        | Some dst, Some src -> virtual_copy stmt dst src
        | _ -> ())
    | None -> (
        match Summaries.find fname with
        | Some { Summaries.effects; _ } ->
            let operand_var = function
              | Summaries.Arg i -> List.nth_opt call.Nast.cargs i
              | Summaries.Ret -> call.Nast.cret
            in
            List.iter
              (fun eff ->
                match eff with
                | Summaries.Alloc _ | Summaries.Static_result _ ->
                    () (* materialized during lowering *)
                | Summaries.Ret_is op -> (
                    match (call.Nast.cret, operand_var op) with
                    | Some dst, Some src -> virtual_copy stmt dst src
                    | _ -> ())
                | Summaries.Ret_points_into i -> (
                    match (call.Nast.cret, List.nth_opt call.Nast.cargs i) with
                    | Some dst, Some arg ->
                        subscribe t stmt arg;
                        Cell.Set.iter
                          (fun (c : Cell.t) ->
                            List.iter
                              (fun w -> add_edge t (norm dst []) w)
                              (S.all_cells t.ctx c.Cell.base))
                          (pts (norm arg []))
                    | _ -> ())
                | Summaries.Deep_copy (a, b) -> (
                    match (operand_var a, operand_var b) with
                    | Some va, Some vb ->
                        subscribe t stmt va;
                        subscribe t stmt vb;
                        Cell.Set.iter
                          (fun (ca : Cell.t) ->
                            Cell.Set.iter
                              (fun (cb : Cell.t) ->
                                let tau = cb.Cell.base.Cvar.vty in
                                let pairs =
                                  S.resolve t.ctx t.graph ca cb tau
                                in
                                transfer stmt pairs)
                              (pts (norm vb [])))
                          (pts (norm va []))
                    | _ -> ())
                | Summaries.Store_through (i, op) -> (
                    match (List.nth_opt call.Nast.cargs i, operand_var op) with
                    | Some parg, Some src ->
                        subscribe t stmt parg;
                        subscribe t stmt src;
                        let tau = pointee_of parg in
                        Cell.Set.iter
                          (fun c ->
                            let pairs =
                              S.resolve t.ctx t.graph c (norm src []) tau
                            in
                            transfer stmt pairs)
                          (pts (norm parg []))
                    | _ -> ())
                | Summaries.Invoke (i, ops) -> (
                    match List.nth_opt call.Nast.cargs i with
                    | Some fp ->
                        subscribe t stmt fp;
                        Cell.Set.iter
                          (fun (c : Cell.t) ->
                            match c.Cell.base.Cvar.vkind with
                            | Cvar.Funval g -> (
                                match Hashtbl.find_opt t.funcs g with
                                | Some callee ->
                                    let actuals =
                                      List.filter_map operand_var ops
                                    in
                                    let rec bind params args =
                                      match (params, args) with
                                      | p :: ps, a :: as_ ->
                                          virtual_copy stmt p a;
                                          bind ps as_
                                      | _ -> ()
                                    in
                                    bind callee.Nast.fparams actuals
                                | None -> ())
                            | _ -> ())
                          (pts (norm fp []))
                    | None -> ()))
              effects
        | None ->
            if not (List.mem fname t.unknown_externs) then
              t.unknown_externs <- fname :: t.unknown_externs)
  in
  match stmt.Nast.kind with
  | Nast.Addr (s, obj, beta) ->
      (* Rule 1: s = &t.β *)
      add_edge t (norm s []) (norm obj beta)
  | Nast.Addr_deref (s, p, alpha) ->
      (* Rule 2: s = &( *p).α *)
      subscribe t stmt p;
      let tau_p = pointee_of p in
      Cell.Set.iter
        (fun c ->
          List.iter
            (fun c' -> add_edge t (norm s []) c')
            (S.lookup t.ctx tau_p alpha c))
        (pts (norm p []))
  | Nast.Copy (s, obj, beta) ->
      (* Rule 3: s = t.β *)
      subscribe t stmt obj;
      let pairs =
        S.resolve t.ctx t.graph (norm s []) (norm obj beta) s.Cvar.vty
      in
      transfer stmt pairs
  | Nast.Load (s, q) ->
      (* Rule 4: s = *q *)
      subscribe t stmt q;
      Cell.Set.iter
        (fun c ->
          let pairs = S.resolve t.ctx t.graph (norm s []) c s.Cvar.vty in
          transfer stmt pairs)
        (pts (norm q []))
  | Nast.Store (p, v) ->
      (* Rule 5: *p = t *)
      subscribe t stmt p;
      subscribe t stmt v;
      let tau_p = pointee_of p in
      Cell.Set.iter
        (fun c ->
          let pairs = S.resolve t.ctx t.graph c (norm v []) tau_p in
          transfer stmt pairs)
        (pts (norm p []))
  | Nast.Arith (s, v) -> (
      subscribe t stmt v;
      let spread (c : Cell.t) =
        List.iter
          (fun w -> add_edge t (norm s []) w)
          (S.all_cells t.ctx c.Cell.base)
      in
      match t.arith_mode with
      | `Spread ->
          (* Assumption 1: the result may point to any cell of the
             objects [v] points into *)
          Cell.Set.iter spread (pts (norm v []))
      | `Stride ->
          (* pointers walking an array stay on the representative
             element; anything else spreads as under Assumption 1 *)
          Cell.Set.iter
            (fun (c : Cell.t) ->
              if S.in_array t.ctx c then add_edge t (norm s []) c
              else spread c)
            (pts (norm v []))
      | `Unknown ->
          (* pessimistic: the result is a corrupted-pointer marker *)
          if not (Cell.Set.is_empty (pts (norm v []))) then
            add_edge t (norm s []) (Cell.whole t.unknown_obj)
      | `Copy ->
          Cell.Set.iter
            (fun w -> add_edge t (norm s []) w)
            (pts (norm v [])))
  | Nast.Call call -> (
      match call.Nast.cfn with
      | Nast.Direct n -> bind_call stmt call n
      | Nast.Indirect fp ->
          subscribe t stmt fp;
          Cell.Set.iter
            (fun (c : Cell.t) ->
              match c.Cell.base.Cvar.vkind with
              | Cvar.Funval n -> bind_call stmt call n
              | _ -> ())
            (pts (norm fp [])))

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

(** Step and time budgets, checked once per worklist statement (time is
    sampled sparsely — a clock read every statement would dominate small
    runs). *)
let check_step_budgets t =
  let b = t.budget in
  if Budget.over_steps b then begin
    Budget.trip_steps b;
    match b.Budget.limits.Budget.max_steps with
    | Some n -> degrade_all t ~reason:(Budget.Steps n)
    | None -> ()
  end;
  if Budget.steps b land 255 = 0 && Budget.over_time b then begin
    Budget.trip_time b;
    match b.Budget.limits.Budget.timeout_s with
    | Some s -> degrade_all t ~reason:(Budget.Timeout s)
    | None -> ()
  end

let solve t : unit =
  Budget.start t.budget;
  List.iter (enqueue t) (Nast.all_stmts t.prog);
  let rec loop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some stmt ->
        Hashtbl.remove t.in_queue stmt.Nast.id;
        t.rounds <- t.rounds + 1;
        Budget.step t.budget;
        check_step_budgets t;
        process t stmt;
        loop ()
  in
  loop ()

(** Analyze [prog] with [strategy]; returns the solver state at fixpoint. *)
let run ?layout ?arith ?budget ~strategy (prog : Nast.program) : t =
  let t = create ?layout ?arith ?budget ~strategy prog in
  solve t;
  t

(** Degradation events recorded during [solve], oldest first. *)
let degradations t : Budget.event list = Budget.events t.budget

let degraded t : bool = Budget.degraded t.budget
