(** The "Offsets" instance (paper Section 4.2.2): cells are (object, byte
    offset) under one concrete layout strategy. The most precise instance;
    its results are only safe for that layout (not portable).

    [resolve] conceptually pairs every byte in [0 .. sizeof τ - 1]; we pair
    only the source offsets that currently carry facts (the solver re-runs
    a statement whenever its source object gains facts, so this is
    equivalent at the fixpoint). Offsets are canonicalized into array
    representative elements and clamped at the object size so the cell
    space stays finite. *)

open Cfront

let name = "Offsets"

let id = "offsets"

let portable = false

(* [resolve] pairs only source offsets that carry facts, so its pair set
   grows with the graph. *)
let graph_resolve = true

let obj_size ctx (obj : Cvar.t) : int =
  match Layout.size_of ctx.Actx.layout obj.Cvar.vty with
  | n -> max n 1
  | exception Diag.Error _ -> 1

(** Canonicalize-and-clamp: fold into array representatives; merge all
    out-of-bounds offsets (Complication 1 can step past a nested object,
    but unbounded offset growth through cyclic casts must not diverge). *)
let canon ctx (obj : Cvar.t) (off : int) : int =
  let size = obj_size ctx obj in
  if off < 0 then 0
  else if off >= size then size
  else Layout.canon_offset ctx.Actx.layout obj.Cvar.vty off

let normalize ctx (s : Cvar.t) (alpha : Ctype.path) : Cell.t =
  let off =
    match Layout.offset_of_path ctx.Actx.layout s.Cvar.vty alpha with
    | n -> n
    | exception Diag.Error _ -> 0
  in
  Cell.v s (Cell.Off (canon ctx s off))

let target_off (c : Cell.t) : int =
  match c.Cell.sel with Cell.Off k -> k | Cell.Path _ -> 0

let lookup ctx (tau : Ctype.t) (alpha : Ctype.path) (target : Cell.t) :
    Cell.t list =
  Actx.count_lookup ctx
    ~structure:(Strategy.involves_struct tau target)
    ~mismatch:false;
  let t = target.Cell.base in
  let k = target_off target in
  let field_off =
    match Layout.offset_of_path ctx.Actx.layout tau alpha with
    | n -> n
    | exception Diag.Error _ -> 0
  in
  [ Cell.v t (Cell.Off (canon ctx t (k + field_off))) ]

let resolve ctx (graph : Graph.t) (dst : Cell.t) (src : Cell.t)
    (tau : Ctype.t) : (Cell.t * Cell.t) list =
  Actx.count_resolve ctx
    ~structure:
      (Strategy.involves_struct tau dst || Strategy.involves_struct tau src)
    ~mismatch:false;
  let s = dst.Cell.base and t = src.Cell.base in
  let j = target_off dst and k = target_off src in
  let size =
    match Layout.size_of ctx.Actx.layout tau with
    | n -> max n 1
    | exception Diag.Error _ -> 1
  in
  (* pair only source offsets that carry facts *)
  let src_cells = Graph.cells_of_obj graph t in
  let pairs =
    List.filter_map
      (fun (c : Cell.t) ->
        match c.Cell.sel with
        | Cell.Off n when n >= k && n < k + size ->
            Some (Cell.v s (Cell.Off (canon ctx s (j + n - k))), c)
        | Cell.Off _ | Cell.Path _ -> None)
      src_cells
  in
  Strategy.dedup_pairs pairs

let all_cells ctx (obj : Cvar.t) : Cell.t list =
  match Layout.leaf_offsets ctx.Actx.layout obj.Cvar.vty with
  | leaves ->
      Strategy.dedup_cells
        (List.map
           (fun (_, off, _) -> Cell.v obj (Cell.Off (canon ctx obj off)))
           leaves)
  | exception Diag.Error _ -> [ Cell.v obj (Cell.Off 0) ]

let in_array ctx (c : Cell.t) : bool =
  let ty = c.Cell.base.Cvar.vty in
  Ctype.is_array ty
  ||
  match c.Cell.sel with
  | Cell.Off k -> (
      match Layout.offset_in_array ctx.Actx.layout ty k with
      | b -> b
      | exception Diag.Error _ -> false)
  | Cell.Path _ -> false

let expand_for_metrics _ctx (c : Cell.t) : Cell.t list = [ c ]
