(** Solver resource budgets and the degradation ledger.

    Configurable limits — worklist steps, wall-clock time, per-object and
    total cell counts — checked by {!Solver} from its worklist loop.
    Tripping a budget degrades the offending object(s) to the
    Collapse-Always treatment instead of aborting; each collapse is
    recorded as an {!event} so results can report what precision was
    given up, why, and when. *)

open Cfront

type limits = {
  max_steps : int option;  (** worklist statements processed *)
  timeout_s : float option;  (** wall-clock seconds for [solve] *)
  max_cells_per_object : int option;
      (** distinct cells of one object carrying outgoing edges *)
  max_total_cells : int option;
      (** distinct cells with outgoing edges, all objects together *)
}

val unlimited : limits
(** No limits — the library default; existing callers see no change. *)

val default : limits
(** Generous finite limits for drivers (the CLI default): no well-behaved
    input degrades, adversarial inputs terminate promptly. *)

type reason =
  | Steps of int
  | Timeout of float
  | Object_cells of int
  | Total_cells of int

type event = {
  obj : Cvar.t option;
      (** the collapsed object; [None] for a run-level trip with nothing
          left to collapse *)
  reason : reason;
  at_step : int;
  at_time : float;  (** seconds since [solve] started *)
}

type t = {
  limits : limits;
  mutable start_time : float;
  mutable steps : int;
  mutable events : event list;  (** newest first *)
  mutable steps_tripped : bool;
  mutable time_tripped : bool;
  mutable total_tripped : bool;
}

val create : ?limits:limits -> unit -> t

val start : t -> unit
(** Stamp the solve start time. *)

val elapsed : t -> float

val step : t -> unit
(** Count one worklist statement processed. *)

val steps : t -> int

val over_steps : t -> bool
(** Step budget exceeded and not yet tripped. *)

val trip_steps : t -> unit

val over_time : t -> bool

val trip_time : t -> unit

val over_total : t -> total_cells:int -> bool

val trip_total : t -> unit

val record : t -> ?obj:Cvar.t -> reason -> unit
(** Log a degradation event at the current step/time. *)

val events : t -> event list
(** All degradation events, oldest first. *)

val degraded : t -> bool

val reasons : t -> reason list

val pp_reason : Format.formatter -> reason -> unit

val pp_event : Format.formatter -> event -> unit

val event_to_string : event -> string
