(** Union-find over dense interned cell ids: the class structure behind
    online cycle elimination. Ids never handed to {!union} are implicitly
    singleton classes, so the structure needs no registration step. *)

type t

val create : ?cap:int -> unit -> t

val find : t -> int -> int
(** Representative of the id's class (itself when never unified).
    Path-compressing. *)

val find_ro : t -> int -> int
(** Same answer as {!find} without path compression — zero writes, so
    concurrent readers are safe while the forest is quiescent (no
    {!union}/{!reset}/{!dissolve} in flight). The parallel engine's
    drain rounds use this; compression still happens on the sequential
    paths through {!find}. *)

val union : t -> into:int -> int -> unit
(** [union t ~into child] merges [child]'s class into [into]'s; [into]'s
    representative survives. The caller picks the direction (the solver
    keeps the member with the larger points-to set, preserving its
    cursor-valid insertion-order prefix). No-op when already unified. *)

val same : t -> int -> int -> bool

val reset : t -> unit
(** Dissolve every class — degradation rebuilds the constraint system
    over a coarser cell space, so stale classes must not survive it. *)

val dissolve : t -> int list -> unit
(** Dissolve one class, leaving every other class intact: each listed id
    becomes its own root again. The list must be the complete class
    (targeted retraction clears a class whose justifying cycle may have
    died with the edit; the surviving statements re-prove any cycle that
    still holds). Passing a strict subset of a class is unsound. *)
