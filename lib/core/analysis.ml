(** One-call driver: pick a strategy, run the solver, collect metrics. *)

open Cfront
open Norm

let strategies : (module Strategy.S) list =
  [
    (module Collapse_always);
    (module Collapse_on_cast);
    (module Common_init_seq);
    (module Offsets);
  ]

let strategy_ids = List.map (fun (module S : Strategy.S) -> S.id) strategies

let strategy_of_id id : (module Strategy.S) option =
  List.find_opt (fun (module S : Strategy.S) -> S.id = id) strategies

type result = {
  solver : Solver.t;
  metrics : Metrics.summary;
  time_s : float;
  degraded : Budget.event list;
      (** budget degradations, oldest first; empty for a full-precision
          run *)
  diags : Diag.payload list;
      (** front-end diagnostics accumulated by [run_source] when given a
          context; empty otherwise *)
}

(** Analyze a normalized program with the given strategy. *)
let run ?(layout = Layout.default) ?budget ?engine ~strategy
    (prog : Nast.program) : result =
  let t0 = Unix_time.now () in
  let solver = Solver.run ~layout ?budget ?engine ~strategy prog in
  let time_s = Unix_time.now () -. t0 in
  {
    solver;
    metrics = Metrics.summarize solver;
    time_s;
    degraded = Solver.degradations solver;
    diags = [];
  }

(** Parse, type-check, lower, and analyze a C source string. *)
let run_source ?(layout = Layout.default) ?defines ?resolve ?budget ?engine
    ?diags ~strategy ~file src : result =
  let prog = Lower.compile ~layout ?defines ?resolve ?diags ~file src in
  let r = run ~layout ?budget ?engine ~strategy prog in
  match diags with
  | Some d -> { r with diags = Diag.diagnostics d }
  | None -> r

(** Points-to set of a named variable (qualified or unqualified), expanded
    for display. Convenience for examples and tests. *)
let pts_of_var (r : result) (name : string) : Cell.t list =
  let prog = r.solver.Solver.prog in
  let v =
    List.find_opt
      (fun v ->
        v.Cvar.vname = name || Cvar.qualified_name v = name)
      prog.Nast.pall_vars
  in
  match v with
  | None -> []
  | Some v ->
      let module S = (val r.solver.Solver.strategy : Strategy.S) in
      let cell = S.normalize r.solver.Solver.ctx v [] in
      Cell.Set.elements (Graph.pts r.solver.Solver.graph cell)
