(** Compact sets of interned cell ids: sorted int arrays for membership,
    plus an insertion-order append log so a plain integer cursor names
    "everything added since my last visit" — the delta-propagation
    solver's unit of work. *)

type t

val create : ?cap:int -> unit -> t

val cardinal : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool

val add : t -> int -> bool
(** Add an id; [true] iff it is new. Sets only grow — there is no
    removal, which is what makes cursors into {!get_ord} stable. *)

val get_ord : t -> int -> int
(** The [i]-th member in insertion order, [0 <= i < cardinal]. *)

val iter : (int -> unit) -> t -> unit
(** Insertion order. *)

val iter_from : int -> (int -> unit) -> t -> unit
(** [iter_from k f s] visits the members added at or after cursor [k],
    in insertion order. Additions made by [f] itself are not visited;
    re-read [cardinal] to pick up the new tail. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Insertion order. *)

val union_into : t -> t -> int
(** [union_into dst src] adds every member of [src] missing from [dst]
    in one merge pass over the sorted arrays (instead of per-element
    O(n) insertion blits), appending the new members to [dst]'s
    insertion-order log in [src]'s insertion order. Cursors into [dst]
    stay valid — the existing log prefix is untouched. Returns the
    number added. [src] is unchanged. *)

val elements : t -> int list
(** Ascending id order. *)

val copy : t -> t
