(** The tunable heart of the framework: the [normalize] / [lookup] /
    [resolve] signature (paper Section 4.2), plus helpers shared by the
    path-based instances.

    Different modules implementing {!S} yield pointer-analysis algorithms
    of different precision and portability; the solver is generic in the
    strategy. *)

open Cfront

module type S = sig
  val name : string
  (** human-readable, e.g. "Common Initial Sequence" *)

  val id : string
  (** short stable identifier, e.g. "cis" *)

  val portable : bool
  (** [true] when results are safe for every ANSI-conforming layout *)

  val normalize : Actx.t -> Cvar.t -> Ctype.path -> Cell.t
  (** [normalize ctx s α] — canonical cell for the sub-object [s.α]. *)

  val lookup : Actx.t -> Ctype.t -> Ctype.path -> Cell.t -> Cell.t list
  (** [lookup ctx τ α target] — the cells possibly referenced by
      [( *p).α] when [p] is declared [τ*] but points to [target]. *)

  val resolve :
    Actx.t -> Graph.t -> Cell.t -> Cell.t -> Ctype.t -> (Cell.t * Cell.t) list
  (** [resolve ctx g dst src τ] — the (destination, source) cell pairs
      transferred by a copy of [sizeof τ] bytes from [src] to [dst]. The
      graph is consulted read-only (the Offsets instance pairs only source
      offsets that carry facts). *)

  val graph_resolve : bool
  (** [true] when [resolve]'s pair set depends on the graph (Offsets pairs
      only fact-bearing source offsets), so the delta solver must re-run a
      statement's resolves when the source object gains a new fact-bearing
      cell. [false] for the path-based instances, whose pair set is a pure
      function of the types — their resolves are derived once. *)

  val all_cells : Actx.t -> Cvar.t -> Cell.t list
  (** Every cell of the object — the Assumption-1 result set for pointer
      arithmetic landing somewhere inside it. *)

  val in_array : Actx.t -> Cell.t -> bool
  (** Does this cell lie within an array sub-object? Used by the optional
      Wilson–Lam stride refinement: element-stride arithmetic on a pointer
      into an array stays on the same (representative) cell. *)

  val expand_for_metrics : Actx.t -> Cell.t -> Cell.t list
  (** Leaf cells a target cell stands for when measuring points-to set
      sizes (Figure 4's expansion of Collapse-Always structure facts). *)
end

(* ------------------------------------------------------------------ *)
(* Shared helpers for the path-based instances                         *)
(* ------------------------------------------------------------------ *)

(** Truncate a field path at the first union-typed prefix: the path-based
    instances keep union objects whole (members overlap). *)
let cut_at_union (ty : Ctype.t) (path : Ctype.path) : Ctype.path =
  let rec go ty taken = function
    | [] -> List.rev taken
    | f :: rest -> (
        let ty = Ctype.strip_arrays ty in
        if Ctype.is_union ty then List.rev taken
        else
          match Ctype.find_field ty f with
          | Some fld -> go fld.Ctype.fty (f :: taken) rest
          | None -> List.rev taken (* unknown field: stop, stay sound *))
  in
  go ty [] path

(** The normalized path for [obj.path]: cut at unions, then descend into
    innermost first fields (paper's recursive [normalize]). *)
let normalize_path (ty : Ctype.t) (path : Ctype.path) : Ctype.path =
  let path = cut_at_union ty path in
  let sub_ty =
    try Ctype.type_at_path ty path with Diag.Error _ -> Ctype.Void
  in
  path @ Ctype.innermost_first_path sub_ty

(** Does this lookup/resolve use "involve structures" in the Figure-3
    sense? True when the declared type or the target object is a
    struct/union. *)
let involves_struct (tau : Ctype.t) (target : Cell.t) : bool =
  Ctype.is_comp (Ctype.strip_arrays tau)
  || Ctype.is_comp (Ctype.strip_arrays target.Cell.base.Cvar.vty)

let dedup_cells (cells : Cell.t list) : Cell.t list =
  Cell.Set.elements (Cell.Set.of_list cells)

let dedup_pairs (pairs : (Cell.t * Cell.t) list) : (Cell.t * Cell.t) list =
  let module P = Set.Make (struct
    type t = Cell.t * Cell.t

    let compare (a1, a2) (b1, b2) =
      match Cell.compare a1 b1 with 0 -> Cell.compare a2 b2 | c -> c
  end) in
  P.elements (P.of_list pairs)
