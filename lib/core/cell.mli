(** Cells: the normalized object references that points-to facts relate.

    A cell is a storage object plus a selector. The Offsets instance uses
    byte offsets; the portable instances use normalized field paths (the
    Collapse-Always instance always the empty path). A single points-to
    graph never mixes selectors from different strategies.

    Cells are hash-consed: {!v} interns every (object, selector) pair and
    stamps it with a dense integer id, making equality an int compare and
    letting {!Graph} keep points-to sets as compact id arrays. The intern
    table is process-global and append-only; ids are never reused. *)

open Cfront

type sel = Path of Ctype.path | Off of int

type t = private { cid : int; base : Cvar.t; sel : sel }

val v : Cvar.t -> sel -> t
(** Intern (and return) the cell for this object and selector. Physically
    equal cells are returned for equal arguments. *)

val whole : Cvar.t -> t
(** The whole-object cell [{base; sel = Path []}]. *)

val id : t -> int
(** The dense interned id ([cid]); assigned in interning order. *)

val of_id : int -> t
(** Inverse of {!id}.
    @raise Invalid_argument on an id no cell was interned with. *)

val interned_count : unit -> int
(** Cells interned so far, process-wide (= the id universe bound). *)

val compare : t -> t -> int
(** Semantic order: by object, then selector — stable across runs, unlike
    interning order. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** ["x"], ["s.f.g"], or ["t@8"]. *)

val to_string : t -> string

val cell_type : t -> Ctype.t
(** Declared type of the storage this cell designates; [Void] when the
    selector does not name a typed sub-object. *)

module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
