(** Binary min-heap of (priority, id) pairs — the solver's
    pseudo-topologically ordered cell worklist. Ties break on the id,
    so the pop order is a pure function of the push sequence. *)

type t

val create : ?cap:int -> unit -> t

val is_empty : t -> bool

val length : t -> int

val clear : t -> unit

val push : t -> prio:int -> int -> unit

val pop : t -> int
(** Minimum-priority element (smallest id on ties). Raises
    [Invalid_argument] when empty. *)

val pop_opt : t -> int option
(** {!pop} as an option — the shape of a drain loop. *)
