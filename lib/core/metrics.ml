(** Measurements behind the paper's evaluation (Section 5).

    - Figure 3: program size and the lookup/resolve instrumentation
      percentages (taken from {!Actx}).
    - Figure 4: average points-to set size over all static instances of
      dereferenced pointers, with Collapse-Always structure facts expanded
      to all leaf fields.
    - Figure 6: total number of points-to edges. *)

open Cfront
open Norm

(** The pointer variable dereferenced by a source-level deref statement. *)
let deref_pointer (s : Nast.stmt) : Cvar.t option =
  if not s.Nast.is_source_deref then None
  else
    match s.Nast.kind with
    | Nast.Addr_deref (_, p, _) -> Some p
    | Nast.Load (_, q) -> Some q
    | Nast.Store (p, _) -> Some p
    | Nast.Call { Nast.cfn = Nast.Indirect p; _ } -> Some p
    | Nast.Addr _ | Nast.Copy _ | Nast.Arith _
    | Nast.Call { Nast.cfn = Nast.Direct _; _ } ->
        None

(** All static deref sites of a program, in order. *)
let deref_sites (prog : Nast.program) : (Nast.stmt * Cvar.t) list =
  List.filter_map
    (fun s -> Option.map (fun p -> (s, p)) (deref_pointer s))
    (Nast.all_stmts prog)

(** Expanded points-to set of pointer [p] under the solved state. *)
let expanded_pts (solver : Solver.t) (p : Cvar.t) : Cell.Set.t =
  let module S = (val solver.Solver.strategy : Strategy.S) in
  let cell = S.normalize solver.Solver.ctx p [] in
  let targets = Graph.pts solver.Solver.graph cell in
  Cell.Set.fold
    (fun c acc ->
      List.fold_left
        (fun acc e -> Cell.Set.add e acc)
        acc
        (S.expand_for_metrics solver.Solver.ctx c))
    targets Cell.Set.empty

type summary = {
  strategy_id : string;
  strategy_name : string;
  deref_sites : int;
  avg_deref_size : float;  (** Figure 4 *)
  max_deref_size : int;
  total_edges : int;  (** Figure 6 *)
  figures3 : Actx.figures;
  lookup_calls : int;
  resolve_calls : int;
  corrupt_derefs : int;
      (** deref sites whose pointer may hold the Unknown marker
          ([`Unknown] arithmetic mode only): potential memory misuses *)
  unknown_externs : string list;
  degraded : Budget.event list;
      (** which objects were collapsed under budget pressure, why, and
          when; empty for a full-precision run *)
  engine : string;
      (** ["delta"], ["delta-nocycle"], ["naive"], ["delta-par"] or
          ["summary"] *)
  solver_visits : int;  (** statement visits the worklist dispatched *)
  facts_consumed : int;
      (** facts read by rule visits plus facts pushed along copy edges *)
  delta_facts : int;  (** facts rule visits actually iterated *)
  full_facts : int;
      (** set sizes those visits would have re-read naively; the
          [delta_facts]/[full_facts] ratio is the delta engine's win *)
  copy_edges : int;  (** subset-constraint edges installed (delta only) *)
  cycles_found : int;
      (** subset cycles collapsed by lazy cycle detection ([`Delta]) *)
  cells_unified : int;
      (** cells folded into another class's representative ([`Delta]) *)
  wasted_propagations : int;
      (** propagations that produced nothing new: statement visits that
          consumed facts but derived no edge, plus copy-edge drains that
          moved facts but added none — the redundancy cycle elimination
          targets *)
  par_domains : int;
      (** domains the parallel engine ran on (0 for the sequential
          engines) *)
  par_frontier_rounds : int;
      (** parallel drain rounds executed, each ending at a sequential
          frontier gap ([`Delta_par] only) *)
  par_steals : int;
      (** region claims by a domain other than the region's home domain
          ([`Delta_par] only) *)
  incr_stmts_added : int;
      (** statements the last incremental edit added (0 for a cold run) *)
  incr_stmts_removed : int;
  incr_facts_retracted : int;
      (** facts retraction cleared from affected cells before replaying *)
  incr_warm_visits : int;
      (** statement visits the warm-start resume performed — compare
          against [solver_visits] of a cold solve for the warm ratio *)
  incr_stmts_replayed : int;
      (** statements the targeted replay re-enqueued (the whole program
          on fallback) — the retraction's working-set size *)
  incr_fallback_planned : int;
      (** 1 when the incremental engine's cost estimate chose a scratch
          solve over retraction (a plan, not a degradation) *)
  summary_sccs : int;
      (** call-graph SCCs the bottom-up schedule solved ([`Summary]
          only; 0 otherwise) *)
  summary_scc_rounds : int;
      (** SCC fixpoint rounds — extras over [summary_sccs] are
          function-pointer callee sets stabilizing at an SCC boundary *)
  summary_instantiations : int;
      (** distinct (call site, resolved callee) summary instantiations *)
  summary_hits : int;
      (** functions whose summary was injected from the summary cache *)
  summary_recomputed : int;  (** functions summarized from scratch *)
}

let summarize (solver : Solver.t) : summary =
  let module S = (val solver.Solver.strategy : Strategy.S) in
  let sites = deref_sites solver.Solver.prog in
  let site_sets = List.map (fun (_, p) -> expanded_pts solver p) sites in
  let sizes = List.map Cell.Set.cardinal site_sets in
  let corrupt_derefs =
    List.length
      (List.filter
         (Cell.Set.exists (fun (c : Cell.t) ->
              Cvar.equal c.Cell.base solver.Solver.unknown_obj))
         site_sets)
  in
  let n = List.length sizes in
  let avg =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int n
  in
  {
    strategy_id = S.id;
    strategy_name = S.name;
    deref_sites = n;
    avg_deref_size = avg;
    max_deref_size = List.fold_left max 0 sizes;
    total_edges = Graph.edge_count solver.Solver.graph;
    figures3 = Actx.figures solver.Solver.ctx;
    lookup_calls = solver.Solver.ctx.Actx.lookup_calls;
    resolve_calls = solver.Solver.ctx.Actx.resolve_calls;
    corrupt_derefs;
    (* sorted: a warm-started solver discovers externs in a different
       order than a cold one, but the set is identical *)
    unknown_externs = List.sort_uniq compare solver.Solver.unknown_externs;
    degraded = Budget.events solver.Solver.budget;
    engine =
      (match solver.Solver.engine with
      | `Delta -> "delta"
      | `Delta_nocycle -> "delta-nocycle"
      | `Naive -> "naive"
      | `Delta_par _ -> "delta-par"
      | `Summary -> "summary");
    solver_visits = solver.Solver.rounds;
    facts_consumed = solver.Solver.facts_consumed;
    delta_facts = solver.Solver.delta_facts;
    full_facts = solver.Solver.full_facts;
    copy_edges = Solver.copy_edge_count solver;
    cycles_found = solver.Solver.cycles_found;
    cells_unified = solver.Solver.cells_unified;
    wasted_propagations = solver.Solver.wasted_props;
    par_domains =
      (match solver.Solver.engine with `Delta_par n -> n | _ -> 0);
    par_frontier_rounds = solver.Solver.par_frontier_rounds;
    par_steals = solver.Solver.par_steals;
    incr_stmts_added = solver.Solver.incr_stmts_added;
    incr_stmts_removed = solver.Solver.incr_stmts_removed;
    incr_facts_retracted = solver.Solver.incr_facts_retracted;
    incr_warm_visits = solver.Solver.incr_warm_visits;
    incr_stmts_replayed = solver.Solver.incr_stmts_replayed;
    incr_fallback_planned = solver.Solver.incr_fallback_planned;
    summary_sccs = solver.Solver.summary_sccs;
    summary_scc_rounds = solver.Solver.summary_scc_rounds;
    summary_instantiations = solver.Solver.summary_instantiations;
    summary_hits = solver.Solver.summary_hits;
    summary_recomputed = solver.Solver.summary_recomputed;
  }

(* ------------------------------------------------------------------ *)
(* Fleet-level counters, owned by the batch/serve supervisor           *)
(* ------------------------------------------------------------------ *)

type fleet = {
  mutable jobs : int;
  mutable completed : int;
  mutable replayed : int;
  mutable crashes : int;
  mutable hangs : int;
  mutable job_errors : int;
  mutable retries : int;
  mutable quarantined : int;
  mutable breaker_skips : int;
  mutable max_rung : int;
  mutable shed : int;
  mutable deadline_expired : int;
  mutable rss_kills : int;
  mutable brownout_escalations : int;
  mutable brownout_rung : int;
  mutable brownout_max_rung : int;
  mutable drain_incomplete : int;
  mutable queue_depth : int;
  mutable queue_peak : int;
  mutable latencies_ms : float list;
}

let fleet_create () =
  {
    jobs = 0;
    completed = 0;
    replayed = 0;
    crashes = 0;
    hangs = 0;
    job_errors = 0;
    retries = 0;
    quarantined = 0;
    breaker_skips = 0;
    max_rung = 0;
    shed = 0;
    deadline_expired = 0;
    rss_kills = 0;
    brownout_escalations = 0;
    brownout_rung = 0;
    brownout_max_rung = 0;
    drain_incomplete = 0;
    queue_depth = 0;
    queue_peak = 0;
    latencies_ms = [];
  }

(* Nearest-rank percentile over an unsorted sample; [p] in [0,100].
   0.0 for an empty sample (a fleet that answered nothing). *)
let percentile (xs : float list) (p : float) : float =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let fleet_json (f : fleet) : string =
  Printf.sprintf
    "{\"jobs\":%d,\"completed\":%d,\"replayed\":%d,\"crashes\":%d,\"hangs\":%d,\"job_errors\":%d,\"retries\":%d,\"quarantined\":%d,\"breaker_skips\":%d,\"max_rung\":%d,\"shed\":%d,\"deadline_expired\":%d,\"rss_kills\":%d,\"brownout_escalations\":%d,\"brownout_rung\":%d,\"brownout_max_rung\":%d,\"drain_incomplete\":%d,\"queue_depth\":%d,\"queue_peak\":%d,\"latency_p50_ms\":%.1f,\"latency_p99_ms\":%.1f}"
    f.jobs f.completed f.replayed f.crashes f.hangs f.job_errors f.retries
    f.quarantined f.breaker_skips f.max_rung f.shed f.deadline_expired
    f.rss_kills f.brownout_escalations f.brownout_rung f.brownout_max_rung
    f.drain_incomplete f.queue_depth f.queue_peak
    (percentile f.latencies_ms 50.)
    (percentile f.latencies_ms 99.)

(* ------------------------------------------------------------------ *)
(* Fixpoint-store counters, owned by lib/store                         *)
(* ------------------------------------------------------------------ *)

type store = {
  mutable hits : int;
  mutable misses : int;
  mutable ancestor_warm_starts : int;
  mutable corrupt_quarantined : int;
  mutable evictions : int;
  mutable snapshots_written : int;
  mutable write_failures : int;
}

let store_create () =
  {
    hits = 0;
    misses = 0;
    ancestor_warm_starts = 0;
    corrupt_quarantined = 0;
    evictions = 0;
    snapshots_written = 0;
    write_failures = 0;
  }

let store_json (s : store) : string =
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"ancestor_warm_starts\":%d,\"corrupt_quarantined\":%d,\"evictions\":%d,\"snapshots_written\":%d,\"write_failures\":%d}"
    s.hits s.misses s.ancestor_warm_starts s.corrupt_quarantined s.evictions
    s.snapshots_written s.write_failures

let pp_store ppf (s : store) =
  Fmt.pf ppf
    "store: %d hit%s, %d miss%s, %d ancestor warm start%s, %d quarantined, \
     %d evicted, %d written, %d write failure%s"
    s.hits
    (if s.hits = 1 then "" else "s")
    s.misses
    (if s.misses = 1 then "" else "es")
    s.ancestor_warm_starts
    (if s.ancestor_warm_starts = 1 then "" else "s")
    s.corrupt_quarantined s.evictions s.snapshots_written s.write_failures
    (if s.write_failures = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Per-function summary-cache counters, owned by lib/summary           *)
(* ------------------------------------------------------------------ *)

type sumcache = {
  mutable sum_hits : int;
  mutable sum_misses : int;
  mutable sum_unmapped : int;
  mutable sum_written : int;
  mutable sum_write_failures : int;
  mutable sum_corrupt : int;
  mutable sum_facts_injected : int;
  mutable sum_copies_injected : int;
}

let sumcache_create () =
  {
    sum_hits = 0;
    sum_misses = 0;
    sum_unmapped = 0;
    sum_written = 0;
    sum_write_failures = 0;
    sum_corrupt = 0;
    sum_facts_injected = 0;
    sum_copies_injected = 0;
  }

let sumcache_json (s : sumcache) : string =
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"unmapped\":%d,\"records_written\":%d,\"write_failures\":%d,\"corrupt\":%d,\"facts_injected\":%d,\"copies_injected\":%d}"
    s.sum_hits s.sum_misses s.sum_unmapped s.sum_written
    s.sum_write_failures s.sum_corrupt s.sum_facts_injected
    s.sum_copies_injected

let pp_sumcache ppf (s : sumcache) =
  Fmt.pf ppf
    "summary cache: %d hit%s, %d miss%s, %d unmapped, %d written, %d write \
     failure%s, %d corrupt, %d facts + %d copies injected"
    s.sum_hits
    (if s.sum_hits = 1 then "" else "s")
    s.sum_misses
    (if s.sum_misses = 1 then "" else "es")
    s.sum_unmapped s.sum_written s.sum_write_failures
    (if s.sum_write_failures = 1 then "" else "s")
    s.sum_corrupt s.sum_facts_injected s.sum_copies_injected

let pp_fleet ppf (f : fleet) =
  Fmt.pf ppf
    "fleet: %d job%s, %d completed, %d replayed, %d crash%s, %d hang%s, %d \
     error%s, %d retr%s, %d quarantined, %d breaker skip%s, max rung %d"
    f.jobs
    (if f.jobs = 1 then "" else "s")
    f.completed f.replayed f.crashes
    (if f.crashes = 1 then "" else "es")
    f.hangs
    (if f.hangs = 1 then "" else "s")
    f.job_errors
    (if f.job_errors = 1 then "" else "s")
    f.retries
    (if f.retries = 1 then "y" else "ies")
    f.quarantined f.breaker_skips
    (if f.breaker_skips = 1 then "" else "s")
    f.max_rung;
  if
    f.shed > 0 || f.rss_kills > 0 || f.brownout_max_rung > 0
    || f.drain_incomplete > 0
  then
    Fmt.pf ppf
      ", %d shed (%d deadline-expired), %d rss kill%s, brownout rung \
       %d (peak %d, %d escalation%s), %d drain-incomplete, queue peak %d"
      f.shed f.deadline_expired f.rss_kills
      (if f.rss_kills = 1 then "" else "s")
      f.brownout_rung f.brownout_max_rung f.brownout_escalations
      (if f.brownout_escalations = 1 then "" else "s")
      f.drain_incomplete f.queue_peak
