(** Machine-readable (JSON) rendering of analysis results. See the
    interface for the determinism contract ([~timing:false]). *)

open Cfront

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* Budget.reason carries the tripped limit; timeouts are reported in
   milliseconds so every limit field is an integer. *)
let reason_parts : Budget.reason -> string * int = function
  | Budget.Steps n -> ("steps", n)
  | Budget.Timeout s -> ("timeout", int_of_float (s *. 1000.))
  | Budget.Object_cells n -> ("object-cells", n)
  | Budget.Total_cells n -> ("total-cells", n)

let json_of_event ?(timing = true) (e : Budget.event) : string =
  let kind, limit = reason_parts e.Budget.reason in
  let obj =
    match e.Budget.obj with
    | Some v -> quote (Cvar.qualified_name v)
    | None -> "null"
  in
  let time =
    if timing then Printf.sprintf ",\"at_time\":%.6f" e.Budget.at_time else ""
  in
  Printf.sprintf "{\"obj\":%s,\"reason\":%s,\"limit\":%d,\"at_step\":%d%s}" obj
    (quote kind) limit e.Budget.at_step time

let json_of_diag (p : Diag.payload) : string =
  let sev =
    match p.Diag.severity with
    | Diag.Warning -> "warning"
    | Diag.Error_sev -> "error"
  in
  Printf.sprintf
    "{\"severity\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (quote sev)
    (quote p.Diag.loc.Srcloc.file)
    p.Diag.loc.Srcloc.line p.Diag.loc.Srcloc.col (quote p.Diag.message)

let json_of_result ?(timing = true) ?(solver_stats = true) ~name
    (r : Analysis.result) : string =
  let m = r.Analysis.metrics in
  let b = Buffer.create 512 in
  let field fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  field "{\"program\":%s" (quote name);
  field ",\"strategy\":%s" (quote m.Metrics.strategy_id);
  field ",\"strategy_name\":%s" (quote m.Metrics.strategy_name);
  field ",\"deref_sites\":%d" m.Metrics.deref_sites;
  field ",\"avg_deref_size\":%.4f" m.Metrics.avg_deref_size;
  field ",\"max_deref_size\":%d" m.Metrics.max_deref_size;
  field ",\"total_edges\":%d" m.Metrics.total_edges;
  if solver_stats then begin
    field ",\"lookup_calls\":%d" m.Metrics.lookup_calls;
    field ",\"resolve_calls\":%d" m.Metrics.resolve_calls
  end;
  field ",\"corrupt_derefs\":%d" m.Metrics.corrupt_derefs;
  if solver_stats then begin
    field ",\"engine\":%s" (quote m.Metrics.engine);
    field ",\"solver_visits\":%d" m.Metrics.solver_visits;
    field ",\"facts_consumed\":%d" m.Metrics.facts_consumed;
    field ",\"delta_facts\":%d" m.Metrics.delta_facts;
    field ",\"full_facts\":%d" m.Metrics.full_facts;
    field ",\"copy_edges\":%d" m.Metrics.copy_edges;
    field ",\"cycles_found\":%d" m.Metrics.cycles_found;
    field ",\"cells_unified\":%d" m.Metrics.cells_unified;
    field ",\"wasted_propagations\":%d" m.Metrics.wasted_propagations;
    field ",\"par_domains\":%d" m.Metrics.par_domains;
    field ",\"par_frontier_rounds\":%d" m.Metrics.par_frontier_rounds;
    field ",\"par_steals\":%d" m.Metrics.par_steals;
    field ",\"incr_stmts_added\":%d" m.Metrics.incr_stmts_added;
    field ",\"incr_stmts_removed\":%d" m.Metrics.incr_stmts_removed;
    field ",\"incr_facts_retracted\":%d" m.Metrics.incr_facts_retracted;
    field ",\"incr_warm_visits\":%d" m.Metrics.incr_warm_visits;
    field ",\"incr_stmts_replayed\":%d" m.Metrics.incr_stmts_replayed;
    field ",\"incr_fallback_planned\":%d" m.Metrics.incr_fallback_planned;
    field ",\"summary_sccs\":%d" m.Metrics.summary_sccs;
    field ",\"summary_scc_rounds\":%d" m.Metrics.summary_scc_rounds;
    field ",\"summary_instantiations\":%d" m.Metrics.summary_instantiations;
    field ",\"summary_hits\":%d" m.Metrics.summary_hits;
    field ",\"summary_recomputed\":%d" m.Metrics.summary_recomputed
  end;
  field ",\"unknown_externs\":[%s]"
    (String.concat "," (List.map quote m.Metrics.unknown_externs));
  field ",\"degraded\":[%s]"
    (String.concat "," (List.map (json_of_event ~timing) r.Analysis.degraded));
  field ",\"diags\":[%s]"
    (String.concat "," (List.map json_of_diag r.Analysis.diags));
  if timing then field ",\"time_s\":%.6f" r.Analysis.time_s;
  Buffer.add_char b '}';
  Buffer.contents b
