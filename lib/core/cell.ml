(** Cells: the normalized object references that points-to facts relate.

    A cell is a storage object ({!Cfront.Cvar.t}) plus a selector. The
    Offsets instance uses byte offsets ({!constructor:Off}); the portable
    instances use normalized field paths ({!constructor:Path}) — the
    Collapse-Always instance always uses the empty path. A single points-to
    graph never mixes selectors from different strategies.

    Cells are hash-consed: {!v} interns every (object, selector) pair and
    stamps it with a dense integer {!field:cid}, so equality is one int
    compare, hashing is free, and {!Graph} can represent points-to sets as
    compact sorted id arrays ({!Idset}) instead of balanced trees. The
    intern table is process-global (ids are never reused); cells of
    finished runs stay interned, which trades a modest arena for O(1)
    identity everywhere. *)

open Cfront

type sel = Path of Ctype.path | Off of int

type t = { cid : int; base : Cvar.t; sel : sel }

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Keyed by (vid, selector): Cvar identity is its vid, and selector
   equality is structural, so polymorphic hash/equal are exact. *)
let intern_tbl : (int * sel, t) Hashtbl.t = Hashtbl.create 4096

let by_id : t option array ref = ref (Array.make 1024 None)

let interned = ref 0

let v base sel =
  let key = (base.Cvar.vid, sel) in
  match Hashtbl.find_opt intern_tbl key with
  | Some c -> c
  | None ->
      let c = { cid = !interned; base; sel } in
      Hashtbl.replace intern_tbl key c;
      if !interned = Array.length !by_id then begin
        let arr = Array.make (2 * !interned) None in
        Array.blit !by_id 0 arr 0 !interned;
        by_id := arr
      end;
      !by_id.(!interned) <- Some c;
      incr interned;
      c

let whole base = v base (Path [])

let id c = c.cid

let of_id i =
  match !by_id.(i) with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cell.of_id: %d not interned" i)

let interned_count () = !interned

(* ------------------------------------------------------------------ *)
(* Ordering, equality, printing                                        *)
(* ------------------------------------------------------------------ *)

let compare_sel a b =
  match (a, b) with
  | Path p, Path q -> compare p q
  | Off i, Off j -> compare i j
  | Path _, Off _ -> -1
  | Off _, Path _ -> 1

(* Semantic order (object, then selector) — stable for display and for
   comparing cells across solver runs; [cid] order is interning order. *)
let compare a b =
  match Cvar.compare a.base b.base with
  | 0 -> compare_sel a.sel b.sel
  | c -> c

let equal a b = a.cid = b.cid

let hash a = a.cid

let pp ppf c =
  match c.sel with
  | Path [] -> Cvar.pp ppf c.base
  | Path p -> Fmt.pf ppf "%a.%a" Cvar.pp c.base Ctype.pp_path p
  | Off i -> Fmt.pf ppf "%a@@%d" Cvar.pp c.base i

let to_string c = Fmt.str "%a" pp c

(** Declared type of the storage designated by this cell; [Void] when the
    selector does not name a typed sub-object (e.g. a padding offset). *)
let cell_type (c : t) : Ctype.t =
  match c.sel with
  | Path p -> (
      try Ctype.type_at_path c.base.Cvar.vty p with Diag.Error _ -> Ctype.Void)
  | Off _ -> Ctype.Void

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
