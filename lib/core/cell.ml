(** Cells: the normalized object references that points-to facts relate.

    A cell is a storage object ({!Cfront.Cvar.t}) plus a selector. The
    Offsets instance uses byte offsets ({!constructor:Off}); the portable
    instances use normalized field paths ({!constructor:Path}) — the
    Collapse-Always instance always uses the empty path. A single points-to
    graph never mixes selectors from different strategies.

    Cells are hash-consed: {!v} interns every (object, selector) pair and
    stamps it with a dense integer {!field:cid}, so equality is one int
    compare, hashing is free, and {!Graph} can represent points-to sets as
    compact sorted id arrays ({!Idset}) instead of balanced trees. The
    intern table is process-global (ids are never reused); cells of
    finished runs stay interned, which trades a modest arena for O(1)
    identity everywhere. *)

open Cfront

type sel = Path of Ctype.path | Off of int

type t = { cid : int; base : Cvar.t; sel : sel }

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Keyed by (vid, selector): Cvar identity is its vid, and selector
   equality is structural, so polymorphic hash/equal are exact.

   Domain safety: solver domains may race [v]/[of_id] against an intern
   happening on another domain (the compile phase pre-interns everything
   a program mentions, but lazily materialized cells — e.g. [Strategy]
   resolve paths — can still first appear mid-solve). Writers serialize
   on [lock]. Readers are lock-free: the table is open-addressed with
   linear probing and never deletes, and slots hold immutable cells, so
   a racy read of a slot sees either [None] or a fully built cell (the
   OCaml memory model forbids out-of-thin-air values; records are
   published whole). A reader that misses — possibly spuriously, because
   plain writes need not be visible across domains — retries under the
   lock, which synchronizes with the last writer. Growth swaps in a
   fresh array through an [Atomic], so probes never see a half-rehashed
   table. *)
let lock = Mutex.create ()

let intern_tbl : t option array Atomic.t = Atomic.make (Array.make 4096 None)

let by_id : t option array Atomic.t = Atomic.make (Array.make 1024 None)

let interned = Atomic.make 0

let key_hash (vid : int) (sel : sel) : int =
  (vid * 0x9e3779b1) lxor Hashtbl.hash sel

let key_equal (c : t) (vid : int) (sel : sel) : bool =
  c.base.Cvar.vid = vid && c.sel = sel

(* Probe [arr] for (vid, sel); tables are grown before they fill, so an
   empty slot always terminates the scan. *)
let find_in (arr : t option array) (vid : int) (sel : sel) : t option =
  let mask = Array.length arr - 1 in
  let rec go i =
    match arr.(i) with
    | None -> None
    | Some c when key_equal c vid sel -> Some c
    | Some _ -> go ((i + 1) land mask)
  in
  go (key_hash vid sel land mask)

(* Caller holds [lock]. *)
let insert_in (arr : t option array) (c : t) : unit =
  let mask = Array.length arr - 1 in
  let rec go i =
    match arr.(i) with None -> arr.(i) <- Some c | Some _ -> go ((i + 1) land mask)
  in
  go (key_hash c.base.Cvar.vid c.sel land mask)

(* Caller holds [lock]. *)
let intern_locked (base : Cvar.t) (sel : sel) : t =
  let n = Atomic.get interned in
  let c = { cid = n; base; sel } in
  let tbl = Atomic.get intern_tbl in
  let tbl =
    if 2 * (n + 1) < Array.length tbl then tbl
    else begin
      (* Keep load factor under 1/2: rehash into a double-size table and
         publish it before the new cell becomes findable. *)
      let bigger = Array.make (2 * Array.length tbl) None in
      Array.iter (function None -> () | Some c -> insert_in bigger c) tbl;
      Atomic.set intern_tbl bigger;
      bigger
    end
  in
  insert_in tbl c;
  let ids = Atomic.get by_id in
  let ids =
    if n < Array.length ids then ids
    else begin
      let bigger = Array.make (2 * Array.length ids) None in
      Array.blit ids 0 bigger 0 n;
      Atomic.set by_id bigger;
      bigger
    end
  in
  ids.(n) <- Some c;
  Atomic.set interned (n + 1);
  c

let v base sel =
  let vid = base.Cvar.vid in
  match find_in (Atomic.get intern_tbl) vid sel with
  | Some c -> c
  | None ->
      Mutex.lock lock;
      (* Re-probe: the miss may have raced a writer (or been a stale
         plain-field read); the lock synchronizes with the last intern. *)
      let c =
        match find_in (Atomic.get intern_tbl) vid sel with
        | Some c -> c
        | None -> intern_locked base sel
      in
      Mutex.unlock lock;
      c

let whole base = v base (Path [])

let id c = c.cid

let of_id i =
  let slot () =
    let arr = Atomic.get by_id in
    if i < Array.length arr then arr.(i) else None
  in
  match slot () with
  | Some c -> c
  | None -> (
      (* Cross-domain visibility of the plain slot write isn't
         guaranteed without synchronizing — retry under the lock. *)
      Mutex.lock lock;
      let r = slot () in
      Mutex.unlock lock;
      match r with
      | Some c -> c
      | None -> invalid_arg (Printf.sprintf "Cell.of_id: %d not interned" i))

let interned_count () = Atomic.get interned

(* ------------------------------------------------------------------ *)
(* Ordering, equality, printing                                        *)
(* ------------------------------------------------------------------ *)

let compare_sel a b =
  match (a, b) with
  | Path p, Path q -> compare p q
  | Off i, Off j -> compare i j
  | Path _, Off _ -> -1
  | Off _, Path _ -> 1

(* Semantic order (object, then selector) — stable for display and for
   comparing cells across solver runs; [cid] order is interning order. *)
let compare a b =
  match Cvar.compare a.base b.base with
  | 0 -> compare_sel a.sel b.sel
  | c -> c

let equal a b = a.cid = b.cid

let hash a = a.cid

let pp ppf c =
  match c.sel with
  | Path [] -> Cvar.pp ppf c.base
  | Path p -> Fmt.pf ppf "%a.%a" Cvar.pp c.base Ctype.pp_path p
  | Off i -> Fmt.pf ppf "%a@@%d" Cvar.pp c.base i

let to_string c = Fmt.str "%a" pp c

(** Declared type of the storage designated by this cell; [Void] when the
    selector does not name a typed sub-object (e.g. a padding offset). *)
let cell_type (c : t) : Ctype.t =
  match c.sel with
  | Path p -> (
      try Ctype.type_at_path c.base.Cvar.vty p with Diag.Error _ -> Ctype.Void)
  | Off _ -> Ctype.Void

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
