(** Measurements behind the paper's evaluation (Section 5): the Figure-4
    average points-to set size over dereferenced pointers, the Figure-6
    edge counts, and the Figure-3 instrumentation percentages. *)

open Cfront
open Norm

val deref_pointer : Nast.stmt -> Cvar.t option
(** The pointer dereferenced by a source-level deref statement, if this
    statement is one. *)

val deref_sites : Nast.program -> (Nast.stmt * Cvar.t) list
(** All static instances of dereferenced pointers, in program order. *)

val expanded_pts : Solver.t -> Cvar.t -> Cell.Set.t
(** Points-to set of a pointer under the solved state, expanded for
    metrics (Collapse-Always structure targets become their leaf
    fields). *)

type summary = {
  strategy_id : string;
  strategy_name : string;
  deref_sites : int;
  avg_deref_size : float;  (** Figure 4 *)
  max_deref_size : int;
  total_edges : int;  (** Figure 6 *)
  figures3 : Actx.figures;
  lookup_calls : int;
  resolve_calls : int;
  corrupt_derefs : int;
      (** deref sites whose pointer may hold the Unknown marker
          ([`Unknown] arithmetic mode only) *)
  unknown_externs : string list;
  degraded : Budget.event list;
      (** which objects were collapsed under budget pressure, why, and
          when; empty for a full-precision run *)
  engine : string;
      (** ["delta"], ["delta-nocycle"], ["naive"], ["delta-par"] or
          ["summary"] *)
  solver_visits : int;  (** statement visits the worklist dispatched *)
  facts_consumed : int;
      (** facts read by rule visits plus facts pushed along copy edges *)
  delta_facts : int;  (** facts rule visits actually iterated *)
  full_facts : int;
      (** set sizes those visits would have re-read naively; the
          [delta_facts]/[full_facts] ratio is the delta engine's win *)
  copy_edges : int;  (** subset-constraint edges installed (delta only) *)
  cycles_found : int;
      (** subset cycles collapsed by lazy cycle detection ([`Delta]) *)
  cells_unified : int;
      (** cells folded into another class's representative ([`Delta]) *)
  wasted_propagations : int;
      (** propagations that produced nothing new: statement visits that
          consumed facts but derived no edge, plus copy-edge drains that
          moved facts but added none *)
  par_domains : int;
      (** domains the parallel engine ran on (0 for the sequential
          engines) *)
  par_frontier_rounds : int;
      (** parallel drain rounds executed ([`Delta_par] only) *)
  par_steals : int;
      (** region claims by a non-home domain ([`Delta_par] only) *)
  incr_stmts_added : int;
      (** statements the last incremental edit added (0 for a cold run) *)
  incr_stmts_removed : int;
  incr_facts_retracted : int;
      (** facts retraction cleared from affected cells before replaying *)
  incr_warm_visits : int;
      (** statement visits the warm-start resume performed *)
  incr_stmts_replayed : int;
      (** statements the targeted replay re-enqueued (the whole program
          on fallback) *)
  incr_fallback_planned : int;
      (** 1 when the incremental engine's cost estimate chose a scratch
          solve over retraction (a plan, not a degradation) *)
  summary_sccs : int;
      (** call-graph SCCs the bottom-up schedule solved ([`Summary]
          only; 0 otherwise) *)
  summary_scc_rounds : int;
      (** SCC fixpoint rounds — extras over [summary_sccs] are
          function-pointer callee sets stabilizing at an SCC boundary *)
  summary_instantiations : int;
      (** distinct (call site, resolved callee) summary instantiations *)
  summary_hits : int;
      (** functions whose summary was injected from the summary cache *)
  summary_recomputed : int;  (** functions summarized from scratch *)
}

val summarize : Solver.t -> summary

(** {1 Fleet-level counters}

    Aggregated by the batch/serve supervisor ([lib/server]) across a
    whole run of jobs: how many crashed, hung, were retried, were
    quarantined, and how far down the degradation ladder the fleet had
    to go. One {!fleet} per supervisor; workers never touch it. *)

type fleet = {
  mutable jobs : int;  (** jobs submitted (including replayed ones) *)
  mutable completed : int;  (** jobs that produced a result this run *)
  mutable replayed : int;
      (** jobs whose result was replayed from the journal on resume *)
  mutable crashes : int;
      (** worker deaths (signal or unexpected exit) while running a job *)
  mutable hangs : int;  (** jobs killed for exceeding the job timeout *)
  mutable job_errors : int;
      (** clean in-worker failures (front-end fatals, exceptions) *)
  mutable retries : int;  (** re-queues after a failed attempt *)
  mutable quarantined : int;  (** jobs that exhausted their attempts *)
  mutable breaker_skips : int;
      (** jobs failed fast because their input's circuit breaker was
          already open *)
  mutable max_rung : int;
      (** deepest degradation rung any completed job needed *)
  mutable shed : int;
      (** requests refused with a [shed] outcome (queue full, deadline
          expired, or drain in progress) — never silently dropped *)
  mutable deadline_expired : int;
      (** subset of [shed] whose reason was an expired request deadline *)
  mutable rss_kills : int;
      (** workers SIGKILLed by the memory watchdog for exceeding the
          per-worker RSS cap *)
  mutable brownout_escalations : int;
      (** times sustained queue pressure escalated the brownout rung *)
  mutable brownout_rung : int;  (** brownout rung at end of run *)
  mutable brownout_max_rung : int;  (** deepest brownout rung reached *)
  mutable drain_incomplete : int;
      (** in-flight jobs a drain/shutdown deadline cut off before they
          finished (each was shed, not lost) *)
  mutable queue_depth : int;  (** pending-queue depth at end of run *)
  mutable queue_peak : int;  (** deepest the pending queue ever got *)
  mutable latencies_ms : float list;
      (** submit→outcome latency of every answered request, ms;
          rendered as p50/p99 in {!fleet_json} *)
}

val fleet_create : unit -> fleet

val percentile : float list -> float -> float
(** [percentile xs p] — nearest-rank percentile ([p] in 0..100) of an
    unsorted sample; [0.0] for the empty sample. *)

val fleet_json : fleet -> string
(** Single-line JSON object with the counters above ([latencies_ms]
    rendered as [latency_p50_ms]/[latency_p99_ms]). *)

val pp_fleet : Format.formatter -> fleet -> unit
(** Human-readable one-liner for stderr summaries. *)

(** {1 Fixpoint-store counters}

    Owned by [lib/store]: what the content-addressed snapshot store did
    for one run — served exact repeats, warm-started near-repeats from
    a cached ancestor, quarantined corruption, evicted under its size
    budget. Spliced into report JSON as a ["store"] object and printed
    on the CLI, so a fault in the store is always visible even though
    it can never change the report proper. *)

type store = {
  mutable hits : int;  (** exact-key snapshot loads served *)
  mutable misses : int;  (** requests that found no usable exact match *)
  mutable ancestor_warm_starts : int;
      (** misses warm-started from the nearest cached ancestor *)
  mutable corrupt_quarantined : int;
      (** snapshots that failed checksum/version/decode and were moved
          to quarantine (never deleted) *)
  mutable evictions : int;  (** snapshots deleted by the LRU size budget *)
  mutable snapshots_written : int;
  mutable write_failures : int;
      (** contained write faults (ENOSPC, crash-before-rename): the
          snapshot was not stored, the answer was unaffected *)
}

val store_create : unit -> store

val store_json : store -> string
(** Single-line JSON object with the counters above. *)

val pp_store : Format.formatter -> store -> unit
(** Human-readable one-liner for stderr summaries. *)

(** {1 Per-function summary-cache counters}

    Owned by [lib/summary]: what the persistent per-function summary
    cache did for one [`Summary]-engine run — injected cached function
    summaries, recomputed invalidated ones, refused records whose cell
    keys no longer map onto the edited program. Spliced into report
    JSON as a ["summary_cache"] object, separate from the snapshot
    store's ["store"] block. *)

type sumcache = {
  mutable sum_hits : int;
      (** functions served from a cached summary record *)
  mutable sum_misses : int;  (** functions with no record under their key *)
  mutable sum_unmapped : int;
      (** records found but refused because an endpoint's identity-free
          cell key did not map onto exactly one current cell *)
  mutable sum_written : int;  (** summary records written *)
  mutable sum_write_failures : int;
      (** contained write faults: the record was not stored, the
          analysis answer was unaffected *)
  mutable sum_corrupt : int;
      (** records that failed checksum/version/decode (quarantined) *)
  mutable sum_facts_injected : int;
      (** direct points-to edges injected from cached summaries *)
  mutable sum_copies_injected : int;
      (** subset-constraint edges injected from cached summaries *)
}

val sumcache_create : unit -> sumcache

val sumcache_json : sumcache -> string
(** Single-line JSON object with the counters above. *)

val pp_sumcache : Format.formatter -> sumcache -> unit
(** Human-readable one-liner for stderr summaries. *)
