(** Solver resource budgets and the degradation ledger.

    The tunable instances trade precision for cost, and the expensive ones
    (Collapse-on-Cast, CIS, Offsets) can blow up cell counts and worklist
    iterations on cast-heavy inputs. A {!t} carries configurable
    {!limits} — worklist steps, wall-clock time, cells per object, total
    cells — that {!Solver} checks from its worklist loop. Tripping a
    budget does not abort the analysis: the solver degrades the offending
    object(s) to the Collapse-Always treatment (one cell per object,
    edges merged) and continues to a sound-but-coarser fixpoint. Every
    collapse is recorded here as an {!event} — which object, why, at what
    step and time — so results can report exactly what precision was
    given up. *)

open Cfront

type limits = {
  max_steps : int option;  (** worklist statements processed *)
  timeout_s : float option;  (** wall-clock seconds for [solve] *)
  max_cells_per_object : int option;
      (** distinct cells of one object carrying outgoing edges *)
  max_total_cells : int option;
      (** distinct cells with outgoing edges, all objects together *)
}

let unlimited =
  {
    max_steps = None;
    timeout_s = None;
    max_cells_per_object = None;
    max_total_cells = None;
  }

(** Generous defaults for drivers: large enough that no well-behaved
    input degrades, small enough that adversarial cast-heavy inputs
    terminate promptly. *)
let default =
  {
    max_steps = Some 2_000_000;
    timeout_s = Some 10.0;
    max_cells_per_object = Some 512;
    max_total_cells = Some 500_000;
  }

type reason =
  | Steps of int  (** step budget tripped (the limit) *)
  | Timeout of float  (** wall-clock budget tripped (the limit, seconds) *)
  | Object_cells of int  (** this object exceeded the per-object limit *)
  | Total_cells of int  (** the graph exceeded the total-cell limit *)

type event = {
  obj : Cvar.t option;
      (** the collapsed object; [None] marks a run-level trip where
          nothing was left to collapse *)
  reason : reason;
  at_step : int;
  at_time : float;  (** seconds since [solve] started *)
}

type t = {
  limits : limits;
  mutable start_time : float;
  mutable steps : int;
  mutable events : event list;  (** newest first *)
  mutable steps_tripped : bool;
  mutable time_tripped : bool;
  mutable total_tripped : bool;
}

let create ?(limits = unlimited) () =
  {
    limits;
    start_time = Unix_time.now ();
    steps = 0;
    events = [];
    steps_tripped = false;
    time_tripped = false;
    total_tripped = false;
  }

let start t = t.start_time <- Unix_time.now ()

let elapsed t = Unix_time.now () -. t.start_time

let step t = t.steps <- t.steps + 1

let steps t = t.steps

(* Each coarse budget trips at most once: tripping degrades globally, so
   re-checking afterwards would only re-fire on the already-degraded
   state. The per-object budget needs no flag — collapsing the object is
   what stops it re-firing. *)

let over_steps t =
  (not t.steps_tripped)
  && match t.limits.max_steps with Some n -> t.steps > n | None -> false

let trip_steps t = t.steps_tripped <- true

let over_time t =
  (not t.time_tripped)
  && match t.limits.timeout_s with Some s -> elapsed t > s | None -> false

let trip_time t = t.time_tripped <- true

let over_total t ~total_cells =
  (not t.total_tripped)
  &&
  match t.limits.max_total_cells with
  | Some n -> total_cells > n
  | None -> false

let trip_total t = t.total_tripped <- true

let record t ?obj reason =
  t.events <- { obj; reason; at_step = t.steps; at_time = elapsed t } :: t.events

let events t = List.rev t.events

let degraded t = t.events <> []

let reasons t = List.rev_map (fun e -> e.reason) t.events

let pp_reason ppf = function
  | Steps n -> Fmt.pf ppf "step budget (%d)" n
  | Timeout s -> Fmt.pf ppf "time budget (%.3gs)" s
  | Object_cells n -> Fmt.pf ppf "per-object cell budget (%d)" n
  | Total_cells n -> Fmt.pf ppf "total cell budget (%d)" n

let pp_event ppf e =
  let subject ppf = function
    | Some v -> Cvar.pp ppf v
    | None -> Fmt.string ppf "<run>"
  in
  Fmt.pf ppf "%a collapsed: %a at step %d (%.3fs)" subject e.obj pp_reason
    e.reason e.at_step e.at_time

let event_to_string e = Fmt.str "%a" pp_event e
