(** Machine-readable (JSON) rendering of analysis results.

    One single-line JSON object per result: identity, the paper's
    metrics, budget-degradation events, and front-end diagnostics. The
    emitter is hand-rolled (no JSON library dependency) and always
    produces a single line with escaped strings, so a rendered result
    can travel over line-oriented channels — the worker/supervisor pipe
    protocol and the crash-safe job journal.

    With [~timing:false] the volatile fields (wall-clock seconds, event
    timestamps) are omitted, making the rendering a pure function of the
    input program and budget: the same job always renders byte-for-byte
    identically. The batch journal relies on this to guarantee that a
    resumed batch reproduces the output of an uninterrupted one. *)

val escape : string -> string
(** JSON string-body escaping: quotes, backslashes, and control
    characters (including tabs and newlines). *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val json_of_event : ?timing:bool -> Budget.event -> string
(** One degradation event:
    [{"obj":…|null,"reason":…,"limit":…,"at_step":…[,"at_time":…]}]. *)

val json_of_diag : Cfront.Diag.payload -> string
(** One diagnostic:
    [{"severity":…,"file":…,"line":…,"col":…,"message":…}]. *)

val json_of_result :
  ?timing:bool -> ?solver_stats:bool -> name:string -> Analysis.result -> string
(** The full result object (program, strategy, metrics, [degraded],
    [diags], and — when [timing] — [time_s]). Single line.

    With [~solver_stats:false] the engine-dependent cost counters
    ([lookup_calls], [resolve_calls], [engine], [solver_visits],
    [facts_consumed], [delta_facts], [full_facts], [copy_edges],
    [cycles_found], [cells_unified], [wasted_propagations]) are omitted,
    leaving only the fields that are a pure function of the computed
    fixpoint — so renderings from different engines of the same analysis
    must agree byte-for-byte, which the differential tests exploit. *)
