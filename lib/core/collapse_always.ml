(** The "Collapse Always" instance (paper Section 4.3.1): every structure
    is a single variable. Most general, least precise, trivially portable.

    [pointsTo(s, t)] means "any field of [s] may point to any field of
    [t]"; for the Figure-4 metric a structure target therefore expands to
    all of its leaf fields ({!expand_for_metrics}). *)

open Cfront

let name = "Collapse Always"

let id = "collapse-always"

let portable = true

let graph_resolve = false

let normalize _ctx (s : Cvar.t) (_alpha : Ctype.path) : Cell.t = Cell.whole s

let lookup ctx (tau : Ctype.t) (_alpha : Ctype.path) (target : Cell.t) :
    Cell.t list =
  Actx.count_lookup ctx
    ~structure:(Strategy.involves_struct tau target)
    ~mismatch:false;
  [ Cell.whole target.Cell.base ]

let resolve ctx _graph (dst : Cell.t) (src : Cell.t) (tau : Ctype.t) :
    (Cell.t * Cell.t) list =
  Actx.count_resolve ctx
    ~structure:(Strategy.involves_struct tau dst || Strategy.involves_struct tau src)
    ~mismatch:false;
  [ (Cell.whole dst.Cell.base, Cell.whole src.Cell.base) ]

let all_cells _ctx (obj : Cvar.t) : Cell.t list = [ Cell.whole obj ]

let in_array _ctx (c : Cell.t) : bool =
  Ctype.is_array c.Cell.base.Cvar.vty

let expand_for_metrics _ctx (c : Cell.t) : Cell.t list =
  let ty = c.Cell.base.Cvar.vty in
  if Ctype.is_comp (Ctype.strip_arrays ty) then
    List.map
      (fun p -> Cell.v c.Cell.base (Cell.Path p))
      (Ctype.leaf_paths ty)
  else [ c ]
