(** Iterative Tarjan SCC; see the interface for the ordering and
    determinism contract. *)

module Itbl = Hashtbl.Make (Int)

let sccs ~(roots : int list) ~(succs : int -> int list) : int list list =
  let index = Itbl.create 256 in
  let lowlink = Itbl.create 256 in
  let on_stack = Itbl.create 256 in
  let stack = ref [] in
  let out = ref [] in
  let counter = ref 0 in
  let visit root =
    if not (Itbl.mem index root) then begin
      let push v =
        Itbl.replace index v !counter;
        Itbl.replace lowlink v !counter;
        incr counter;
        stack := v :: !stack;
        Itbl.replace on_stack v ()
      in
      push root;
      let frames = ref [ (root, succs root) ] in
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, w :: more) :: rest ->
            frames := (v, more) :: rest;
            if not (Itbl.mem index w) then begin
              push w;
              frames := (w, succs w) :: !frames
            end
            else if Itbl.mem on_stack w then
              if Itbl.find index w < Itbl.find lowlink v then
                Itbl.replace lowlink v (Itbl.find index w)
        | (v, []) :: rest ->
            frames := rest;
            if Itbl.find lowlink v = Itbl.find index v then begin
              (* [v] roots an SCC: pop its members off the node stack *)
              let scc = ref [] in
              let more = ref true in
              while !more do
                match !stack with
                | [] -> more := false
                | w :: tl ->
                    stack := tl;
                    Itbl.remove on_stack w;
                    scc := w :: !scc;
                    if w = v then more := false
              done;
              out := !scc :: !out
            end;
            (match !frames with
            | (u, _) :: _ ->
                if Itbl.find lowlink v < Itbl.find lowlink u then
                  Itbl.replace lowlink u (Itbl.find lowlink v)
            | [] -> ())
      done
    end
  in
  List.iter visit roots;
  (* components complete only after all their successors have: the
     cons-accumulated list is already topological, sources first *)
  !out
