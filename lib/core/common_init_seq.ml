(** The "Common Initial Sequence" instance (paper Section 4.3.3): like
    Collapse-on-Cast, but exploits the ANSI guarantee that structs sharing
    a common initial sequence of compatibly-typed fields lay those fields
    out identically. Portable, and the most precise of the portable
    instances. *)

open Cfront

let name = "Common Initial Sequence"

let id = "cis"

let portable = true

let graph_resolve = false

let normalize _ctx (s : Cvar.t) (alpha : Ctype.path) : Cell.t =
  Cell.v s (Cell.Path (Strategy.normalize_path s.Cvar.vty alpha))

let target_path (c : Cell.t) : Ctype.path =
  match c.Cell.sel with Cell.Path p -> p | Cell.Off _ -> []

type case = Exact | Cis | Collapse

(** Core of [lookup]. Returns the referenced cells and which rule decided:
    [Exact] — some enclosing sub-object has a compatible type; [Cis] — the
    accessed field is inside a common initial sequence; [Collapse] — the
    conservative fall-back. *)
let lookup_i (tau : Ctype.t) (alpha : Ctype.path) (target : Cell.t) :
    Cell.t list * case =
  let t = target.Cell.base in
  let tty = t.Cvar.vty in
  let beta = target_path target in
  let mk p = Cell.v t (Cell.Path (Strategy.normalize_path tty p)) in
  let candidates = Ctype.enclosing_candidates tty beta in
  let type_of delta =
    match Ctype.type_at_path tty delta with
    | dty -> Some dty
    | exception Diag.Error _ -> None
  in
  (* 1. a compatible enclosing sub-object: field correspondence is exact.
     Arrays are transparent (single representative element). *)
  let tau_s = Ctype.strip_arrays tau in
  let exact =
    List.find_opt
      (fun delta ->
        match type_of delta with
        | Some dty -> Ctype.compatible (Ctype.strip_arrays dty) tau_s
        | None -> false)
      candidates
  in
  match exact with
  | Some delta -> ([ mk (delta @ alpha) ], Exact)
  | None -> (
      (* 2. the accessed field is within a common initial sequence *)
      let cis_of delta =
        match type_of delta with
        | Some dty -> Ctype.common_initial_seq tau dty
        | None -> []
      in
      let via_cis =
        match alpha with
        | [] -> None
        | h :: rest ->
            List.find_map
              (fun delta ->
                let cis = cis_of delta in
                List.find_map
                  (fun ((f1 : Ctype.field), (f2 : Ctype.field)) ->
                    if f1.Ctype.fname = h then
                      Some (mk (delta @ (f2.Ctype.fname :: rest)))
                    else None)
                  cis)
              candidates
      in
      match via_cis with
      | Some cell -> ([ cell ], Cis)
      | None ->
          (* 3. conservative: all fields of t from the end of the longest
             common initial sequence onward (or from β when none) *)
          let best =
            List.fold_left
              (fun acc delta ->
                let cis = cis_of delta in
                match acc with
                | Some (_, best_cis) when List.length best_cis >= List.length cis
                  ->
                    acc
                | _ -> if cis = [] then acc else Some (delta, cis))
              None candidates
          in
          let cells =
            match best with
            | None ->
                let following = Ctype.following_leaves tty beta in
                mk beta :: List.map mk following
            | Some (delta, cis) -> (
                (* the last leaf covered by the CIS *)
                match List.rev cis with
                | [] -> [ mk beta ]
                | (_, (f2 : Ctype.field)) :: _ -> (
                    let sub_leaves = Ctype.leaf_paths f2.Ctype.fty in
                    match List.rev sub_leaves with
                    | [] -> [ mk beta ]
                    | last_leaf :: _ ->
                        let covered_last =
                          delta @ (f2.Ctype.fname :: last_leaf)
                        in
                        List.map mk
                          (Ctype.following_leaves tty covered_last)))
          in
          (Strategy.dedup_cells cells, Collapse))

let lookup ctx tau alpha target : Cell.t list =
  let cells, case = lookup_i tau alpha target in
  Actx.count_lookup ctx
    ~structure:(Strategy.involves_struct tau target)
    ~mismatch:(case <> Exact);
  cells

let resolve ctx _graph (dst : Cell.t) (src : Cell.t) (tau : Ctype.t) :
    (Cell.t * Cell.t) list =
  let pairs, matched =
    Actx.inside_resolve ctx (fun () ->
        let deltas = Ctype.leaf_paths tau in
        let matched = ref true in
        let pairs =
          List.concat_map
            (fun delta ->
              let ds, c1 = lookup_i tau delta dst in
              let ss, c2 = lookup_i tau delta src in
              if c1 <> Exact || c2 <> Exact then matched := false;
              List.concat_map (fun d -> List.map (fun s -> (d, s)) ss) ds)
            deltas
        in
        (Strategy.dedup_pairs pairs, !matched))
  in
  Actx.count_resolve ctx
    ~structure:
      (Strategy.involves_struct tau dst || Strategy.involves_struct tau src)
    ~mismatch:(not matched);
  pairs

let all_cells _ctx (obj : Cvar.t) : Cell.t list =
  List.map
    (fun p -> Cell.v obj (Cell.Path p))
    (Ctype.leaf_paths obj.Cvar.vty)

let in_array _ctx (c : Cell.t) : bool =
  let ty = c.Cell.base.Cvar.vty in
  Ctype.is_array ty
  ||
  match c.Cell.sel with
  | Cell.Path p -> Ctype.outermost_array_prefix ty p <> None
  | Cell.Off _ -> false

let expand_for_metrics _ctx (c : Cell.t) : Cell.t list = [ c ]
