(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. Internally both
    sides are interned cell ids ({!Cell.id}) and every set is a compact
    sorted id array ({!Idset}) whose insertion-order log doubles as the
    delta queue the solver's difference propagation consumes. An index
    from base objects to the cells of that object carrying outgoing edges
    supports the Offsets instance's range-restricted [resolve].

    Cells proven equivalent by online cycle elimination (a subset cycle
    [a ⊆ b ⊆ … ⊆ a]) are {!unify}'d into one class over a {!Uf.t}: the
    whole class aliases a single shared [Idset.t], keyed by the class
    representative. Observable semantics stay member-expanded — [pts],
    [iter_edges], [fold_sources], [equal], [edge_count] all behave as if
    every member carried its own copy of the shared set, so reports and
    queries reproduce the unshared fixpoint exactly. Only targets keep
    their original identity; sharing canonicalizes sources. {!unshare}
    dissolves the classes (degradation rebuilds the constraint system
    over coarser cells, where the old classes are meaningless). *)

open Cfront

module Itbl = Hashtbl.Make (Int)

type t = {
  edges : Idset.t Itbl.t;
      (** class representative id → shared target id set (never empty) *)
  uf : Uf.t;  (** source-cell classes (online cycle elimination) *)
  members : Cell.t list Itbl.t;
      (** representative id → all cells of the class, only for classes
          of two or more members (singletons are implicit) *)
  by_obj : Idset.t Cvar.Tbl.t;
      (** object → ids of its cells with facts (entries dropped when they
          empty, so [fold_objects] never visits a fact-free object) *)
  mutable edge_count : int;
      (** member-expanded: a class of [m] cells sharing a set of [n]
          targets contributes [m * n] *)
  mutable source_count : int;  (** member-expanded fact-bearing cells *)
}

let create () =
  {
    edges = Itbl.create 256;
    uf = Uf.create ();
    members = Itbl.create 16;
    by_obj = Cvar.Tbl.create 64;
    edge_count = 0;
    source_count = 0;
  }

(* ------------------------------------------------------------------ *)
(* Classes                                                             *)
(* ------------------------------------------------------------------ *)

(** The representative cell of [c]'s class ([c] itself when never
    unified). All graph lookups resolve through it. *)
let canon g (c : Cell.t) : Cell.t = Cell.of_id (Uf.find g.uf (Cell.id c))

(** All cells of [c]'s class, the representative included. *)
let class_members g (c : Cell.t) : Cell.t list =
  let rid = Uf.find g.uf (Cell.id c) in
  match Itbl.find_opt g.members rid with
  | Some ms -> ms
  | None -> [ Cell.of_id rid ]

let members_of g (rid : int) : Cell.t list =
  match Itbl.find_opt g.members rid with
  | Some ms -> ms
  | None -> [ Cell.of_id rid ]

let class_size g (rid : int) : int =
  match Itbl.find_opt g.members rid with
  | Some ms -> List.length ms
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Read-only views (parallel drain rounds)                             *)
(* ------------------------------------------------------------------ *)

(* The parallel engine's drain rounds run with every table in this
   record structurally frozen (no new bindings, no unification, no
   degradation — all deferred to the sequential frontier gaps); the only
   mutation in flight is growth of Idsets, each owned by exactly one
   domain for the round. These variants perform zero writes — notably no
   union-find path compression — so concurrent readers never race. *)

(** {!canon} without path compression. *)
let canon_ro g (c : Cell.t) : Cell.t = Cell.of_id (Uf.find_ro g.uf (Cell.id c))

(** Id-level {!canon_ro}. *)
let canon_id_ro g (cid : int) : int = Uf.find_ro g.uf cid

(** The shared target set keyed by an (already canonical) class
    representative id. Round code mutates the returned set directly —
    legal only for classes the calling domain owns this round. *)
let pts_ids_of_rid g (rid : int) : Idset.t option = Itbl.find_opt g.edges rid

(** Member count of the class of an (already canonical) representative
    id — the weight of one fact in the member-expanded [edge_count]. *)
let class_size_of_rid g (rid : int) : int = class_size g rid

(** Gap-only: fold a round's locally accumulated member-expanded edge
    additions into the counter ({!add_edge} is bypassed in rounds). *)
let bump_edge_count g (n : int) : unit = g.edge_count <- g.edge_count + n

(* ------------------------------------------------------------------ *)
(* Lookups                                                             *)
(* ------------------------------------------------------------------ *)

let to_set (s : Idset.t) : Cell.Set.t =
  Idset.fold (fun i acc -> Cell.Set.add (Cell.of_id i) acc) s Cell.Set.empty

let find_set g (c : Cell.t) : Idset.t option =
  Itbl.find_opt g.edges (Uf.find g.uf (Cell.id c))

let pts g (c : Cell.t) : Cell.Set.t =
  match find_set g c with Some s -> to_set s | None -> Cell.Set.empty

(** The target id set of [c]'s class, if it has one. The set is live (it
    grows as edges land) and append-ordered — cursors into it stay valid
    until the class is unified into a larger one. *)
let pts_ids g (c : Cell.t) : Idset.t option = find_set g c

let pts_size g (c : Cell.t) : int =
  match find_set g c with Some s -> Idset.cardinal s | None -> 0

(** Does [c] currently carry any outgoing edge? *)
let has_source g (c : Cell.t) : bool =
  Itbl.mem g.edges (Uf.find g.uf (Cell.id c))

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

(** Record [cid] (a member id, not a representative) as fact-bearing in
    the per-object index. *)
let index_cell g (c : Cell.t) : unit =
  let idx =
    match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
    | Some s -> s
    | None ->
        let s = Idset.create () in
        Cvar.Tbl.replace g.by_obj c.Cell.base s;
        s
  in
  if Idset.add idx (Cell.id c) then g.source_count <- g.source_count + 1

(** Add edge [c → w]; returns [true] if the edge is new. The fact lands
    in [c]'s class set, so every class member gains it at once. *)
let add_edge g (c : Cell.t) (w : Cell.t) : bool =
  let rid = Uf.find g.uf (Cell.id c) in
  let set, fresh_source =
    match Itbl.find_opt g.edges rid with
    | Some s -> (s, false)
    | None ->
        let s = Idset.create () in
        Itbl.replace g.edges rid s;
        (s, true)
  in
  if Idset.add set (Cell.id w) then begin
    g.edge_count <- g.edge_count + class_size g rid;
    if fresh_source then List.iter (index_cell g) (members_of g rid);
    true
  end
  else false

(** Merge the current points-to set of [src]'s class into [dst]'s class
    set with one {!Idset.union_into} pass — the bulk form of repeated
    [add_edge] used for copy-edge drains and collapse merges. Returns the
    number of facts added and the cells that just became fact-bearing
    ([dst]'s whole class when it had no set before, [[]] otherwise). *)
let union_pts g ~(dst : Cell.t) ~(src : Cell.t) : int * Cell.t list =
  let sid = Uf.find g.uf (Cell.id src) in
  let did = Uf.find g.uf (Cell.id dst) in
  if sid = did then (0, [])
  else
    match Itbl.find_opt g.edges sid with
    | None -> (0, [])
    | Some ss -> (
        match Itbl.find_opt g.edges did with
        | Some ds ->
            let added = Idset.union_into ds ss in
            g.edge_count <- g.edge_count + (added * class_size g did);
            (added, [])
        | None ->
            let ds = Idset.create ~cap:(Idset.cardinal ss) () in
            let added = Idset.union_into ds ss in
            Itbl.replace g.edges did ds;
            let dmembers = members_of g did in
            g.edge_count <- g.edge_count + (added * List.length dmembers);
            List.iter (index_cell g) dmembers;
            (added, dmembers))

(** Unify the classes of [a] and [b]: afterwards they share one set and
    one representative. The representative kept is the one whose class
    set holds more facts (ties: the smaller id), so the survivor's
    insertion-order log keeps its prefix — cursors held by consumers of
    the *winning* class stay valid; the caller must reset consumers of
    the losing class. Returns the representative and the cells that just
    became fact-bearing (the fact-free side's members, when exactly one
    side had facts). *)
let unify g (a : Cell.t) (b : Cell.t) : Cell.t * Cell.t list =
  let ra = Uf.find g.uf (Cell.id a) and rb = Uf.find g.uf (Cell.id b) in
  if ra = rb then (Cell.of_id ra, [])
  else begin
    let ca =
      match Itbl.find_opt g.edges ra with Some s -> Idset.cardinal s | None -> 0
    in
    let cb =
      match Itbl.find_opt g.edges rb with Some s -> Idset.cardinal s | None -> 0
    in
    let w, l =
      if cb > ca then (rb, ra)
      else if ca > cb then (ra, rb)
      else (min ra rb, max ra rb)
    in
    let wm = members_of g w and lm = members_of g l in
    Uf.union g.uf ~into:w l;
    Itbl.remove g.members l;
    Itbl.replace g.members w (wm @ lm);
    let rep = Cell.of_id w in
    match (Itbl.find_opt g.edges w, Itbl.find_opt g.edges l) with
    | None, None -> (rep, [])
    | Some s, None ->
        (* the loser's members now see the winner's facts *)
        g.edge_count <- g.edge_count + (Idset.cardinal s * List.length lm);
        List.iter (index_cell g) lm;
        (rep, lm)
    | None, Some s ->
        Itbl.remove g.edges l;
        Itbl.replace g.edges w s;
        g.edge_count <- g.edge_count + (Idset.cardinal s * List.length wm);
        List.iter (index_cell g) wm;
        (rep, wm)
    | Some sw, Some sl ->
        let cw0 = Idset.cardinal sw in
        let added = Idset.union_into sw sl in
        Itbl.remove g.edges l;
        (* winner members gained [added] facts each; loser members now
           carry the merged set instead of their old one *)
        g.edge_count <-
          g.edge_count
          + (List.length wm * added)
          + (List.length lm * (cw0 + added - Idset.cardinal sl));
        (rep, [])
  end

(** Dissolve every class: give each non-representative member its own
    copy of the shared set, then reset the union-find. Called before a
    degradation collapse rewrites the graph — the collapse logic (and
    [remove_source]) operates per cell and must not see aliasing.
    [edge_count]/[source_count]/[by_obj] are already member-expanded, so
    they are unchanged. *)
let unshare g : unit =
  if Itbl.length g.members > 0 then begin
    Itbl.iter
      (fun rid ms ->
        match Itbl.find_opt g.edges rid with
        | None -> ()
        | Some s ->
            List.iter
              (fun (m : Cell.t) ->
                if Cell.id m <> rid then
                  Itbl.replace g.edges (Cell.id m) (Idset.copy s))
              ms)
      g.members;
    Itbl.reset g.members
  end;
  Uf.reset g.uf

(** Remove [c] from the per-object fact-bearing index, dropping the
    object's entry when its last indexed cell goes so
    [fold_objects]/[cell_count_of_obj] never see a stale empty object. *)
let deindex_cell g (c : Cell.t) : unit =
  let cid = Cell.id c in
  match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
  | Some idx when Idset.mem idx cid ->
      g.source_count <- g.source_count - 1;
      (* Idset has no removal (cursors must stay valid), so rebuild
         the small per-object index without [c]. *)
      let remaining =
        Idset.fold (fun i acc -> if i = cid then acc else i :: acc) idx []
      in
      if remaining = [] then Cvar.Tbl.remove g.by_obj c.Cell.base
      else begin
        let fresh = Idset.create ~cap:(List.length remaining) () in
        List.iter (fun i -> ignore (Idset.add fresh i)) (List.rev remaining);
        Cvar.Tbl.replace g.by_obj c.Cell.base fresh
      end
  | Some _ | None -> ()

(** Drop a source cell and its outgoing edges (degradation: the cell's
    facts live on its collapsed representative from now on). Requires an
    unshared graph ({!unshare}) — removal from a shared class would be
    ill-defined. *)
let remove_source g (c : Cell.t) : unit =
  let cid = Cell.id c in
  match Itbl.find_opt g.edges cid with
  | None -> ()
  | Some s ->
      g.edge_count <- g.edge_count - Idset.cardinal s;
      Itbl.remove g.edges cid;
      deindex_cell g c

(** Targeted retraction: drop every fact of [c]'s class and dissolve the
    class, leaving all other classes — and their shared sets, which live
    cursors may still index — untouched. This is the overdelete half of
    delete-and-rederive: the class's unification may have been justified
    by a subset cycle that died with the edit, so the class itself cannot
    be trusted either; the surviving statements re-prove any cycle that
    still holds during rederivation. Returns the member-expanded number
    of facts removed (a class of [m] cells sharing [n] targets counts
    [m * n]). *)
let retract_class g (c : Cell.t) : int =
  let rid = Uf.find g.uf (Cell.id c) in
  let ms = members_of g rid in
  let removed =
    match Itbl.find_opt g.edges rid with
    | None -> 0
    | Some s ->
        let n = Idset.cardinal s in
        Itbl.remove g.edges rid;
        List.iter (deindex_cell g) ms;
        n * List.length ms
  in
  g.edge_count <- g.edge_count - removed;
  if Itbl.mem g.members rid then begin
    Itbl.remove g.members rid;
    Uf.dissolve g.uf (List.map Cell.id ms)
  end;
  removed

(* ------------------------------------------------------------------ *)
(* Iteration (member-expanded)                                         *)
(* ------------------------------------------------------------------ *)

(** Cells of [obj] that have at least one outgoing edge, in the order the
    cells first gained facts. *)
let cells_of_obj g (obj : Cvar.t) : Cell.t list =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> List.rev (Idset.fold (fun i acc -> Cell.of_id i :: acc) s [])
  | None -> []

(** Number of distinct cells of [obj] carrying outgoing edges. *)
let cell_count_of_obj g (obj : Cvar.t) : int =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> Idset.cardinal s
  | None -> 0

(** Number of distinct cells carrying outgoing edges, over all objects.
    Member-expanded: every cell of a fact-bearing class counts. *)
let source_cell_count g : int = g.source_count

(** Fold over objects that carry facts, with their fact-bearing cells. *)
let fold_objects g f init =
  Cvar.Tbl.fold (fun v s acc -> f v (to_set s) acc) g.by_obj init

let edge_count g = g.edge_count

let iter_edges g f =
  Itbl.iter
    (fun rid s ->
      List.iter
        (fun c -> Idset.iter (fun wid -> f c (Cell.of_id wid)) s)
        (members_of g rid))
    g.edges

let fold_sources g f init =
  Itbl.fold
    (fun rid s acc ->
      let set = to_set s in
      List.fold_left (fun acc c -> f c set acc) acc (members_of g rid))
    g.edges init

(** Raw class structure for serialization: every fact-bearing class and
    every multi-member class (fact-free unified classes included —
    they're invisible to [fold_sources] but their sharing matters to a
    restored solver's cursors). Targets come in insertion-log order, so
    replaying [add_edge rep target] in list order reproduces the log a
    cursor indexes. Unsorted; callers wanting deterministic bytes sort
    by semantic cell identity. *)
let dump_classes g : (Cell.t * Cell.t list * int list) list =
  let acc = ref [] in
  Itbl.iter
    (fun rid s ->
      let log = List.rev (Idset.fold (fun i l -> i :: l) s []) in
      acc := (Cell.of_id rid, members_of g rid, log) :: !acc)
    g.edges;
  Itbl.iter
    (fun rid ms ->
      if not (Itbl.mem g.edges rid) then
        acc := (Cell.of_id rid, ms, []) :: !acc)
    g.members;
  !acc

(* ------------------------------------------------------------------ *)
(* Audits and equality                                                 *)
(* ------------------------------------------------------------------ *)

(** Audit the bookkeeping: set keys are class representatives,
    [edge_count] equals the member-expanded summed cardinals, no stored
    set is empty, the members table is consistent with the union-find,
    and the per-object index lists exactly the fact-bearing member
    cells. Returns the offending description, or [None]. *)
let check_counts g : string option =
  let fail = ref None in
  let check cond msg = if !fail = None && not cond then fail := Some msg in
  Itbl.iter
    (fun rid _ ->
      check
        (Uf.find g.uf rid = rid)
        (Printf.sprintf "set keyed by non-representative cell %d" rid))
    g.edges;
  Itbl.iter
    (fun rid ms ->
      check
        (Uf.find g.uf rid = rid)
        (Printf.sprintf "members keyed by non-representative %d" rid);
      check (List.length ms >= 2)
        (Printf.sprintf "degenerate members entry for %d" rid);
      check
        (List.exists (fun (m : Cell.t) -> Cell.id m = rid) ms)
        (Printf.sprintf "representative %d missing from its class" rid);
      List.iter
        (fun (m : Cell.t) ->
          check
            (Uf.find g.uf (Cell.id m) = rid)
            (Printf.sprintf "member %d not in class %d" (Cell.id m) rid))
        ms)
    g.members;
  (match !fail with
  | Some _ -> ()
  | None ->
      let summed =
        Itbl.fold
          (fun rid s acc -> acc + (Idset.cardinal s * class_size g rid))
          g.edges 0
      in
      check (summed = g.edge_count)
        (Printf.sprintf "edge_count drift: counter %d, summed %d" g.edge_count
           summed);
      check
        (not (Itbl.fold (fun _ s acc -> acc || Idset.is_empty s) g.edges false))
        "empty points-to set retained in edges";
      let indexed =
        Cvar.Tbl.fold (fun _ s acc -> acc + Idset.cardinal s) g.by_obj 0
      in
      let expanded =
        Itbl.fold (fun rid _ acc -> acc + class_size g rid) g.edges 0
      in
      check (indexed = expanded)
        (Printf.sprintf "by_obj index drift: %d indexed, %d member sources"
           indexed expanded);
      check (indexed = g.source_count)
        (Printf.sprintf "source_count drift: counter %d, indexed %d"
           g.source_count indexed);
      check
        (not
           (Cvar.Tbl.fold
              (fun _ s acc -> acc || Idset.is_empty s)
              g.by_obj false))
        "empty per-object index entry retained";
      Cvar.Tbl.iter
        (fun _ idx ->
          Idset.iter
            (fun cid ->
              check
                (Itbl.mem g.edges (Uf.find g.uf cid))
                (Printf.sprintf "indexed cell %d has no facts" cid))
            idx)
        g.by_obj;
      Itbl.iter
        (fun rid _ ->
          List.iter
            (fun (m : Cell.t) ->
              check
                (match Cvar.Tbl.find_opt g.by_obj m.Cell.base with
                | Some idx -> Idset.mem idx (Cell.id m)
                | None -> false)
                (Printf.sprintf "source cell %d missing from by_obj index"
                   (Cell.id m)))
            (members_of g rid))
        g.edges);
  !fail

let sorted_pairs g =
  let pairs =
    fold_sources g
      (fun c s acc -> Cell.Set.fold (fun w acc -> (c, w) :: acc) s acc)
      []
  in
  List.sort
    (fun (a1, a2) (b1, b2) ->
      match Cell.compare a1 b1 with 0 -> Cell.compare a2 b2 | c -> c)
    pairs

(** Edge-set equality (order-independent), by semantic cell identity.
    Member-expanded, so a shared-class graph equals the unshared graph
    with the same facts. *)
let equal a b =
  a.edge_count = b.edge_count
  && List.equal
       (fun (a1, a2) (b1, b2) -> Cell.equal a1 b1 && Cell.equal a2 b2)
       (sorted_pairs a) (sorted_pairs b)

let pp ppf g =
  let entries = fold_sources g (fun c s acc -> (c, s) :: acc) [] in
  let entries = List.sort (fun (a, _) (b, _) -> Cell.compare a b) entries in
  List.iter
    (fun (c, s) ->
      Fmt.pf ppf "%a -> {%a}@." Cell.pp c
        (Fmt.list ~sep:(Fmt.any ", ") Cell.pp)
        (Cell.Set.elements s))
    entries
