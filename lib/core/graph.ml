(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. An index from base
    objects to the cells of that object carrying outgoing edges supports
    the Offsets instance's range-restricted [resolve]. *)

open Cfront

type t = {
  edges : Cell.Set.t ref Cell.Tbl.t;
  by_obj : Cell.Set.t ref Cvar.Tbl.t;  (** cells of an object with facts *)
  mutable edge_count : int;
}

let create () =
  { edges = Cell.Tbl.create 256; by_obj = Cvar.Tbl.create 64; edge_count = 0 }

let pts g (c : Cell.t) : Cell.Set.t =
  match Cell.Tbl.find_opt g.edges c with
  | Some s -> !s
  | None -> Cell.Set.empty

(** Add edge [c → w]; returns [true] if the edge is new. *)
let add_edge g (c : Cell.t) (w : Cell.t) : bool =
  let set =
    match Cell.Tbl.find_opt g.edges c with
    | Some s -> s
    | None ->
        let s = ref Cell.Set.empty in
        Cell.Tbl.replace g.edges c s;
        s
  in
  if Cell.Set.mem w !set then false
  else begin
    set := Cell.Set.add w !set;
    g.edge_count <- g.edge_count + 1;
    let idx =
      match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
      | Some s -> s
      | None ->
          let s = ref Cell.Set.empty in
          Cvar.Tbl.replace g.by_obj c.Cell.base s;
          s
    in
    idx := Cell.Set.add c !idx;
    true
  end

(** Drop a source cell and its outgoing edges (degradation: the cell's
    facts live on its collapsed representative from now on). *)
let remove_source g (c : Cell.t) : unit =
  (match Cell.Tbl.find_opt g.edges c with
  | Some s ->
      g.edge_count <- g.edge_count - Cell.Set.cardinal !s;
      Cell.Tbl.remove g.edges c
  | None -> ());
  match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
  | Some s -> s := Cell.Set.remove c !s
  | None -> ()

(** Cells of [obj] that have at least one outgoing edge. *)
let cells_of_obj g (obj : Cvar.t) : Cell.t list =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> Cell.Set.elements !s
  | None -> []

(** Number of distinct cells of [obj] carrying outgoing edges. *)
let cell_count_of_obj g (obj : Cvar.t) : int =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> Cell.Set.cardinal !s
  | None -> 0

(** Number of distinct cells carrying outgoing edges, over all objects. *)
let source_cell_count g : int = Cell.Tbl.length g.edges

(** Fold over objects that carry facts, with their fact-bearing cells. *)
let fold_objects g f init =
  Cvar.Tbl.fold (fun v s acc -> f v !s acc) g.by_obj init

let edge_count g = g.edge_count

let iter_edges g f =
  Cell.Tbl.iter (fun c s -> Cell.Set.iter (fun w -> f c w) !s) g.edges

let fold_sources g f init =
  Cell.Tbl.fold (fun c s acc -> f c !s acc) g.edges init

let pp ppf g =
  let entries = fold_sources g (fun c s acc -> (c, s) :: acc) [] in
  let entries =
    List.sort (fun (a, _) (b, _) -> Cell.compare a b) entries
  in
  List.iter
    (fun (c, s) ->
      Fmt.pf ppf "%a -> {%a}@."
        Cell.pp c
        (Fmt.list ~sep:(Fmt.any ", ") Cell.pp)
        (Cell.Set.elements s))
    entries
