(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. Internally both
    sides are interned cell ids ({!Cell.id}) and every set is a compact
    sorted id array ({!Idset}) whose insertion-order log doubles as the
    delta queue the solver's difference propagation consumes. An index
    from base objects to the cells of that object carrying outgoing edges
    supports the Offsets instance's range-restricted [resolve]. *)

open Cfront

module Itbl = Hashtbl.Make (Int)

type t = {
  edges : Idset.t Itbl.t;  (** source cell id → target id set (never empty) *)
  by_obj : Idset.t Cvar.Tbl.t;
      (** object → ids of its cells with facts (entries dropped when they
          empty, so [fold_objects] never visits a fact-free object) *)
  mutable edge_count : int;
}

let create () =
  { edges = Itbl.create 256; by_obj = Cvar.Tbl.create 64; edge_count = 0 }

let to_set (s : Idset.t) : Cell.Set.t =
  Idset.fold (fun i acc -> Cell.Set.add (Cell.of_id i) acc) s Cell.Set.empty

let pts g (c : Cell.t) : Cell.Set.t =
  match Itbl.find_opt g.edges (Cell.id c) with
  | Some s -> to_set s
  | None -> Cell.Set.empty

(** The target id set of [c], if it has one. The set is live (it grows as
    edges land) and append-ordered — cursors into it stay valid. *)
let pts_ids g (c : Cell.t) : Idset.t option = Itbl.find_opt g.edges (Cell.id c)

let pts_size g (c : Cell.t) : int =
  match Itbl.find_opt g.edges (Cell.id c) with
  | Some s -> Idset.cardinal s
  | None -> 0

(** Does [c] currently carry any outgoing edge? *)
let has_source g (c : Cell.t) : bool = Itbl.mem g.edges (Cell.id c)

(** Add edge [c → w]; returns [true] if the edge is new. *)
let add_edge g (c : Cell.t) (w : Cell.t) : bool =
  let cid = Cell.id c in
  let set =
    match Itbl.find_opt g.edges cid with
    | Some s -> s
    | None ->
        let s = Idset.create () in
        Itbl.replace g.edges cid s;
        s
  in
  if Idset.add set (Cell.id w) then begin
    g.edge_count <- g.edge_count + 1;
    let idx =
      match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
      | Some s -> s
      | None ->
          let s = Idset.create () in
          Cvar.Tbl.replace g.by_obj c.Cell.base s;
          s
    in
    ignore (Idset.add idx cid);
    true
  end
  else false

(** Drop a source cell and its outgoing edges (degradation: the cell's
    facts live on its collapsed representative from now on). The per-object
    index entry is dropped when its last fact-bearing cell goes, so
    [fold_objects]/[cell_count_of_obj] never see a stale empty object. *)
let remove_source g (c : Cell.t) : unit =
  let cid = Cell.id c in
  match Itbl.find_opt g.edges cid with
  | None -> ()
  | Some s ->
      g.edge_count <- g.edge_count - Idset.cardinal s;
      Itbl.remove g.edges cid;
      (match Cvar.Tbl.find_opt g.by_obj c.Cell.base with
      | Some idx ->
          (* Idset has no removal (cursors must stay valid), so rebuild
             the small per-object index without [c]. *)
          let remaining =
            Idset.fold
              (fun i acc -> if i = cid then acc else i :: acc)
              idx []
          in
          if remaining = [] then Cvar.Tbl.remove g.by_obj c.Cell.base
          else begin
            let fresh = Idset.create ~cap:(List.length remaining) () in
            List.iter (fun i -> ignore (Idset.add fresh i)) (List.rev remaining);
            Cvar.Tbl.replace g.by_obj c.Cell.base fresh
          end
      | None -> ())

(** Cells of [obj] that have at least one outgoing edge, in the order the
    cells first gained facts. *)
let cells_of_obj g (obj : Cvar.t) : Cell.t list =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> List.rev (Idset.fold (fun i acc -> Cell.of_id i :: acc) s [])
  | None -> []

(** Number of distinct cells of [obj] carrying outgoing edges. *)
let cell_count_of_obj g (obj : Cvar.t) : int =
  match Cvar.Tbl.find_opt g.by_obj obj with
  | Some s -> Idset.cardinal s
  | None -> 0

(** Number of distinct cells carrying outgoing edges, over all objects. *)
let source_cell_count g : int = Itbl.length g.edges

(** Fold over objects that carry facts, with their fact-bearing cells. *)
let fold_objects g f init =
  Cvar.Tbl.fold (fun v s acc -> f v (to_set s) acc) g.by_obj init

let edge_count g = g.edge_count

let iter_edges g f =
  Itbl.iter
    (fun cid s ->
      let c = Cell.of_id cid in
      Idset.iter (fun wid -> f c (Cell.of_id wid)) s)
    g.edges

let fold_sources g f init =
  Itbl.fold (fun cid s acc -> f (Cell.of_id cid) (to_set s) acc) g.edges init

(** Audit the bookkeeping: [edge_count] equals the summed set cardinals,
    no stored set is empty, and the per-object index lists exactly the
    fact-bearing cells. Returns the offending description, or [None]. *)
let check_counts g : string option =
  let summed = Itbl.fold (fun _ s acc -> acc + Idset.cardinal s) g.edges 0 in
  if summed <> g.edge_count then
    Some
      (Printf.sprintf "edge_count drift: counter %d, summed %d" g.edge_count
         summed)
  else if Itbl.fold (fun _ s acc -> acc || Idset.is_empty s) g.edges false then
    Some "empty points-to set retained in edges"
  else
    let indexed =
      Cvar.Tbl.fold (fun _ s acc -> acc + Idset.cardinal s) g.by_obj 0
    in
    if indexed <> Itbl.length g.edges then
      Some
        (Printf.sprintf "by_obj index drift: %d indexed, %d sources" indexed
           (Itbl.length g.edges))
    else if
      Cvar.Tbl.fold
        (fun _ s acc -> acc || Idset.is_empty s)
        g.by_obj false
    then Some "empty per-object index entry retained"
    else if
      Itbl.fold
        (fun cid _ acc ->
          acc
          ||
          match Cvar.Tbl.find_opt g.by_obj (Cell.of_id cid).Cell.base with
          | Some idx -> not (Idset.mem idx cid)
          | None -> true)
        g.edges false
    then Some "source cell missing from by_obj index"
    else None

let sorted_pairs g =
  let pairs =
    fold_sources g
      (fun c s acc -> Cell.Set.fold (fun w acc -> (c, w) :: acc) s acc)
      []
  in
  List.sort
    (fun (a1, a2) (b1, b2) ->
      match Cell.compare a1 b1 with 0 -> Cell.compare a2 b2 | c -> c)
    pairs

(** Edge-set equality (order-independent), by semantic cell identity. *)
let equal a b =
  a.edge_count = b.edge_count
  && List.equal
       (fun (a1, a2) (b1, b2) -> Cell.equal a1 b1 && Cell.equal a2 b2)
       (sorted_pairs a) (sorted_pairs b)

let pp ppf g =
  let entries = fold_sources g (fun c s acc -> (c, s) :: acc) [] in
  let entries =
    List.sort (fun (a, _) (b, _) -> Cell.compare a b) entries
  in
  List.iter
    (fun (c, s) ->
      Fmt.pf ppf "%a -> {%a}@."
        Cell.pp c
        (Fmt.list ~sep:(Fmt.any ", ") Cell.pp)
        (Cell.Set.elements s))
    entries
