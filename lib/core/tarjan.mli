(** Generic strongly-connected-component condensation (Tarjan's
    algorithm, iterative — no recursion, so deep chains cannot blow the
    OCaml stack).

    Shared by the domain-parallel drain (partitioning the copy graph
    into SCC-closed regions, {!Solver}) and the bottom-up summary
    schedule (condensing the function call graph into an SCC-DAG,
    [`Summary] engine and [lib/summary]). *)

val sccs : roots:int list -> succs:(int -> int list) -> int list list
(** Strongly connected components of the subgraph reachable from
    [roots], in topological order of the condensation: every edge of
    the condensed DAG points from an earlier component in the returned
    list to a later one (sources first, sinks last). Within one
    component, members appear in discovery order.

    Deterministic: roots are visited in list order and successors in
    the order [succs] returns them — never in hashtable order — so the
    same graph always yields the same component sequence (run-to-run
    byte-identical reports depend on this). Duplicate roots and
    self-loops are fine; nodes unreachable from [roots] are absent. *)
