(** Union-find over dense interned cell ids ({!Cell.id}): the class
    structure behind online cycle elimination.

    When the solver proves a subset cycle [a ⊆ b ⊆ … ⊆ a], all members
    converge to the same points-to set, so {!Graph} unifies them into one
    class that shares a single {!Idset.t}. The forest is keyed by the
    dense ids directly (an int array, not a hashtable): [find] is a
    pointer chase with path compression, and ids beyond the allocated
    prefix are implicitly their own roots, so the structure never needs
    to be told about new cells.

    The parent choice is directed ([union ~into]) — the caller picks the
    representative (the member with the larger points-to set, so the
    surviving insertion-order log keeps its cursor-valid prefix). *)

type t = { mutable parent : int array }

let create ?(cap = 256) () =
  let cap = max cap 1 in
  { parent = Array.init cap (fun i -> i) }

let ensure t i =
  let n = Array.length t.parent in
  if i >= n then begin
    let cap = max (2 * n) (i + 1) in
    let parent = Array.init cap (fun j -> j) in
    Array.blit t.parent 0 parent 0 n;
    t.parent <- parent
  end

(** Representative of [i]'s class ([i] itself when never unified). *)
let rec find t (i : int) : int =
  if i >= Array.length t.parent then i
  else
    let p = t.parent.(i) in
    if p = i then i
    else begin
      let r = find t p in
      t.parent.(i) <- r;
      r
    end

(** Read-only [find]: same answer, no path compression. The parallel
    engine's drain rounds resolve representatives with this so the
    forest is never written outside the sequential gaps — domains may
    race [find_ro] against each other freely, as long as [union] /
    [reset] / [dissolve] stay gap-only (they are: unification is
    deferred to the frontier gap by construction). *)
let rec find_ro t (i : int) : int =
  if i >= Array.length t.parent then i
  else
    let p = t.parent.(i) in
    if p = i then i else find_ro t p

(** Merge [child]'s class into [into]'s class; [into]'s representative
    survives. No-op when already unified. *)
let union t ~(into : int) (child : int) : unit =
  ensure t (max into child);
  let ri = find t into and rc = find t child in
  if ri <> rc then t.parent.(rc) <- ri

let same t a b = find t a = find t b

(** Dissolve every class (each id becomes its own root again) — used when
    degradation rebuilds the constraint system from scratch. *)
let reset t =
  let p = t.parent in
  for i = 0 to Array.length p - 1 do
    p.(i) <- i
  done

(** Dissolve one class: every listed member becomes its own root again,
    leaving all other classes untouched. The caller must pass the class
    in full (every member, the representative included) — resetting a
    strict subset would leave the remaining members parented on ids that
    are no longer in their class. Ids beyond the allocated prefix are
    already implicit roots. *)
let dissolve t (members : int list) : unit =
  let n = Array.length t.parent in
  List.iter (fun m -> if m >= 0 && m < n then t.parent.(m) <- m) members
