(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. Sets are compact
    interned-id arrays ({!Idset}) whose insertion-order log is the delta
    queue difference propagation consumes. *)

type t

val create : unit -> t

val pts : t -> Cell.t -> Cell.Set.t
(** Current points-to set of a cell (empty if none). Materializes a
    balanced set — use {!pts_ids} on hot paths. *)

val pts_ids : t -> Cell.t -> Idset.t option
(** The cell's live target id set, if it has one. Append-ordered:
    cursors into it ({!Idset.get_ord}) stay valid as the set grows. *)

val pts_size : t -> Cell.t -> int

val has_source : t -> Cell.t -> bool
(** Does this cell currently carry at least one outgoing edge? *)

val add_edge : t -> Cell.t -> Cell.t -> bool
(** Add an edge; [true] iff it is new. *)

val remove_source : t -> Cell.t -> unit
(** Drop a source cell and its outgoing edges. Used when degradation
    merges a cell's facts onto its collapsed representative, so stale
    fine-grained entries don't linger in reports. Drops the per-object
    index entry when the object's last fact-bearing cell goes. *)

val cells_of_obj : t -> Cfront.Cvar.t -> Cell.t list
(** Cells of an object that have at least one outgoing edge — supports
    the Offsets instance's range-restricted [resolve]. Ordered by when
    each cell first gained facts. *)

val cell_count_of_obj : t -> Cfront.Cvar.t -> int
(** Number of distinct cells of an object carrying outgoing edges —
    the quantity the per-object cell budget bounds. *)

val source_cell_count : t -> int
(** Distinct cells with outgoing edges, over all objects. *)

val fold_objects :
  t -> (Cfront.Cvar.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over objects carrying facts, with their fact-bearing cells.
    Objects whose cells were all removed are not visited. *)

val edge_count : t -> int

val iter_edges : t -> (Cell.t -> Cell.t -> unit) -> unit

val fold_sources : t -> (Cell.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a

val check_counts : t -> string option
(** Audit the bookkeeping invariants: [edge_count] equals the summed set
    cardinals, no retained set is empty, and the per-object index lists
    exactly the fact-bearing cells. [None] when consistent; otherwise a
    description of the first violation found. *)

val equal : t -> t -> bool
(** Edge-set equality, order-independent, by semantic cell identity —
    the differential (delta vs naive) test's notion of "same result". *)

val pp : Format.formatter -> t -> unit
