(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. Sets are compact
    interned-id arrays ({!Idset}) whose insertion-order log is the delta
    queue difference propagation consumes.

    Cells proven equivalent by online cycle elimination are {!unify}'d
    into a class that shares one set; every observation ([pts],
    [iter_edges], [equal], [edge_count], …) stays member-expanded, as if
    each member carried its own copy, so queries and reports reproduce
    the unshared fixpoint exactly. *)

type t

val create : unit -> t

val canon : t -> Cell.t -> Cell.t
(** The representative cell of a cell's class (the cell itself when it
    was never unified). All graph lookups resolve through it. *)

val class_members : t -> Cell.t -> Cell.t list
(** All cells of a cell's class, representative included; a singleton
    list for never-unified cells. *)

val canon_ro : t -> Cell.t -> Cell.t
(** {!canon} without path compression — zero writes, safe for
    concurrent readers during the parallel engine's drain rounds (when
    the union-find is quiescent). *)

val canon_id_ro : t -> int -> int
(** Id-level {!canon_ro}: representative id of a cell id's class. *)

val pts_ids_of_rid : t -> int -> Idset.t option
(** The shared target set keyed by an (already canonical) class
    representative id. The parallel engine mutates the returned set
    directly — legal only for classes the calling domain owns for the
    round, with all table-shape changes deferred to sequential gaps. *)

val class_size_of_rid : t -> int -> int
(** Member count of an (already canonical) representative id's class —
    the member-expanded weight of one fact added to its set. *)

val bump_edge_count : t -> int -> unit
(** Gap-only: fold a parallel round's locally accumulated
    member-expanded edge additions into {!edge_count} (rounds bypass
    {!add_edge}, which normally maintains it). *)

val pts : t -> Cell.t -> Cell.Set.t
(** Current points-to set of a cell (empty if none). Materializes a
    balanced set — use {!pts_ids} on hot paths. *)

val pts_ids : t -> Cell.t -> Idset.t option
(** The live target id set of the cell's class, if it has one.
    Append-ordered: cursors into it ({!Idset.get_ord}) stay valid as the
    set grows — until the class is unified into a larger one, which the
    solver compensates for by resetting the losing side's cursors. *)

val pts_size : t -> Cell.t -> int

val has_source : t -> Cell.t -> bool
(** Does this cell currently carry at least one outgoing edge? *)

val add_edge : t -> Cell.t -> Cell.t -> bool
(** Add an edge; [true] iff it is new. Lands in the source's class set:
    every member of the class gains the fact at once. *)

val union_pts : t -> dst:Cell.t -> src:Cell.t -> int * Cell.t list
(** Bulk [add_edge]: merge the current set of [src]'s class into [dst]'s
    class in one {!Idset.union_into} pass. Returns the number of facts
    added and the cells that just became fact-bearing ([dst]'s whole
    class when it had no facts before). No-op when the two cells are in
    the same class. *)

val unify : t -> Cell.t -> Cell.t -> Cell.t * Cell.t list
(** Merge the two cells' classes (online cycle elimination): afterwards
    they share one representative and one set. The side whose set holds
    more facts survives, so its insertion-order log prefix — and any
    cursor into it — stays valid; the caller resets the losing side's
    consumers. Returns the representative and the cells that just became
    fact-bearing. *)

val unshare : t -> unit
(** Dissolve all classes: each member gets its own copy of the shared
    set, and the union-find resets. Required before degradation rewrites
    the graph per cell ({!remove_source}). Counters are member-expanded
    already, so they don't change. *)

val remove_source : t -> Cell.t -> unit
(** Drop a source cell and its outgoing edges. Used when degradation
    merges a cell's facts onto its collapsed representative, so stale
    fine-grained entries don't linger in reports. Requires an unshared
    graph. Drops the per-object index entry when the object's last
    fact-bearing cell goes. *)

val retract_class : t -> Cell.t -> int
(** Targeted retraction (the overdelete half of delete-and-rederive):
    drop every fact of the cell's class and dissolve the class, leaving
    every other class — and the shared sets live cursors still index —
    untouched. The class is dissolved because its unification may have
    been justified by a subset cycle the edit killed; rederivation
    re-proves any cycle that still holds. Returns the member-expanded
    number of facts removed. Unlike {!remove_source} it does not require
    an unshared graph — that is its point. *)

val cells_of_obj : t -> Cfront.Cvar.t -> Cell.t list
(** Cells of an object that have at least one outgoing edge — supports
    the Offsets instance's range-restricted [resolve]. Ordered by when
    each cell first gained facts. *)

val cell_count_of_obj : t -> Cfront.Cvar.t -> int
(** Number of distinct cells of an object carrying outgoing edges —
    the quantity the per-object cell budget bounds. *)

val source_cell_count : t -> int
(** Distinct cells with outgoing edges, over all objects
    (member-expanded: every cell of a fact-bearing class counts). *)

val fold_objects :
  t -> (Cfront.Cvar.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over objects carrying facts, with their fact-bearing cells.
    Objects whose cells were all removed are not visited. *)

val edge_count : t -> int
(** Member-expanded edge total: a class of [m] cells sharing [n] targets
    counts [m * n], matching what an unshared graph would hold. *)

val iter_edges : t -> (Cell.t -> Cell.t -> unit) -> unit

val fold_sources : t -> (Cell.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a

val dump_classes : t -> (Cell.t * Cell.t list * int list) list
(** Raw class structure for serialization: [(representative, members
    including the representative, target cell ids in insertion-log
    order)] for every fact-bearing class and every multi-member class —
    fact-free unified classes included, which no other observation
    surfaces. Replaying [add_edge rep target] in list order and then
    unifying the members reproduces both the shared set's log (so
    cursors into it stay valid) and the class structure. Unsorted. *)

val check_counts : t -> string option
(** Audit the bookkeeping invariants: sets are keyed by class
    representatives, the members table matches the union-find,
    [edge_count] equals the member-expanded summed cardinals, no
    retained set is empty, and the per-object index lists exactly the
    fact-bearing member cells. [None] when consistent; otherwise a
    description of the first violation found. *)

val equal : t -> t -> bool
(** Edge-set equality, order-independent, by semantic cell identity —
    the differential (delta vs naive) test's notion of "same result".
    Member-expanded, so class sharing is invisible to it. *)

val pp : Format.formatter -> t -> unit
