(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. *)

type t

val create : unit -> t

val pts : t -> Cell.t -> Cell.Set.t
(** Current points-to set of a cell (empty if none). *)

val add_edge : t -> Cell.t -> Cell.t -> bool
(** Add an edge; [true] iff it is new. *)

val remove_source : t -> Cell.t -> unit
(** Drop a source cell and its outgoing edges. Used when degradation
    merges a cell's facts onto its collapsed representative, so stale
    fine-grained entries don't linger in reports. *)

val cells_of_obj : t -> Cfront.Cvar.t -> Cell.t list
(** Cells of an object that have at least one outgoing edge — supports
    the Offsets instance's range-restricted [resolve]. *)

val cell_count_of_obj : t -> Cfront.Cvar.t -> int
(** Number of distinct cells of an object carrying outgoing edges —
    the quantity the per-object cell budget bounds. *)

val source_cell_count : t -> int
(** Distinct cells with outgoing edges, over all objects. *)

val fold_objects :
  t -> (Cfront.Cvar.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over objects carrying facts, with their fact-bearing cells. *)

val edge_count : t -> int

val iter_edges : t -> (Cell.t -> Cell.t -> unit) -> unit

val fold_sources : t -> (Cell.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a

val pp : Format.formatter -> t -> unit
