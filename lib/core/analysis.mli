(** One-call driver: pick a strategy, run the solver, collect metrics. *)

open Cfront
open Norm

val strategies : (module Strategy.S) list
(** The four framework instances, in the paper's precision order:
    Collapse Always, Collapse on Cast, Common Initial Sequence,
    Offsets. *)

val strategy_ids : string list

val strategy_of_id : string -> (module Strategy.S) option
(** Look up by short id: ["collapse-always"], ["collapse-on-cast"],
    ["cis"], ["offsets"]. *)

type result = {
  solver : Solver.t;
  metrics : Metrics.summary;
  time_s : float;  (** CPU seconds spent solving *)
  degraded : Budget.event list;
      (** budget degradations, oldest first; empty for a full-precision
          run *)
  diags : Diag.payload list;
      (** front-end diagnostics accumulated by {!run_source} when given a
          context; empty otherwise *)
}

val run :
  ?layout:Layout.config ->
  ?budget:Budget.limits ->
  ?engine:Solver.engine ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  result
(** Analyze a normalized program. The default budget is
    {!Budget.unlimited}; pass {!Budget.default} (or custom limits) to
    bound the solve and degrade precision instead of diverging. The
    default engine is [`Delta]; [`Naive] selects the reference
    full-reread worklist (same fixpoint, more work). *)

val run_source :
  ?layout:Layout.config ->
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  ?budget:Budget.limits ->
  ?engine:Solver.engine ->
  ?diags:Diag.ctx ->
  strategy:(module Strategy.S) ->
  file:string ->
  string ->
  result
(** Parse, type-check, lower, and analyze a C source string.

    With [?diags], front-end errors are recorded in the context and the
    front end recovers, analyzing what it could parse; the accumulated
    diagnostics are surfaced in [result.diags].

    @raise Diag.Error on front-end failures when [?diags] is omitted. *)

val pts_of_var : result -> string -> Cell.t list
(** Points-to set of a named variable (qualified like ["main::p"] or
    bare); empty for unknown names. *)
