(** Clocks. [now] is wall-clock time; [cpu] is process CPU time.

    The two must not be conflated: time budgets ([Budget.elapsed]) are
    wall-clock deadlines, and under [N] solver domains the process
    accumulates CPU time up to [N]x faster than wall time, so a
    CPU-clock "now" would fire time budgets ~[N]x early. *)

(* Monotonized: gettimeofday can step backwards under NTP adjustment,
   which would make [Budget.elapsed] negative mid-run. Publish the high
   water mark through an atomic so the guarantee holds across domains. *)
let last_wall : float Atomic.t = Atomic.make neg_infinity

let rec monotonize (t : float) : float =
  let prev = Atomic.get last_wall in
  if t <= prev then prev
  else if Atomic.compare_and_set last_wall prev t then t
  else monotonize t

let now () : float = monotonize (Unix.gettimeofday ())

(** CPU time in seconds (user time of this process) — matches the
    paper's "CPU times" measurement; unaffected by sleeps. *)
let cpu () : float = Sys.time ()
